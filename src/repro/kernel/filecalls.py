"""File, directory and identity system calls.

Every mutation of a shared non-VM resource goes through the section 6.3
protocol from :mod:`repro.share.resources`: descriptor-table changes are
single-threaded through ``s_fupdsema``, the miscellaneous resources
(directories, ids, umask, ulimit) through ``s_rupdlock``; in both cases
the other sharing members get their ``p_flag`` sync bits set and pick up
the change at their next kernel entry.
"""

from __future__ import annotations

from repro.errors import (
    EEXIST,
    EFBIG,
    EINVAL,
    ENFILE,
    ENOENT,
    EPERM,
    SysError,
)
from repro.fs.file import (
    File,
    O_ACCMODE,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)
from repro.fs.inode import IEXEC, IREAD, IWRITE, Inode, InodeType
from repro.fs.pipe import BrokenPipe, Pipe
from repro.kernel.signals import SIGPIPE
from repro.share import resources
from repro.share.mask import PR_SDIR, PR_SFDS, PR_SID, PR_SULIMIT, PR_SUMASK
from repro.sim.effects import kdelay


def _words(nbytes: int) -> int:
    return (nbytes + 3) // 4


class FileSyscalls:
    """Kernel mixin: open/close/read/write and friends."""

    # ------------------------------------------------------------------
    # sharing-protocol helpers

    def _fd_update(self, proc, apply_fn):
        """Run a descriptor-table mutation under the sharing protocol."""
        if proc.shares(PR_SFDS):
            result = yield from resources.update_files(self, proc, apply_fn)
            return result
        result = yield from apply_fn()
        return result

    def _misc_update(self, proc, pr_bit: int, apply_fn):
        """Run a misc-resource mutation under the sharing protocol.

        ``apply_fn(shaddr_or_none)`` mutates the u-area and, when given a
        block, refreshes the authoritative copy.
        """
        if proc.shares(pr_bit):
            box = []

            def wrapped(shaddr):
                box.append(apply_fn(shaddr))

            yield from resources.update_misc(self, proc, pr_bit, wrapped)
            return box[0]
        return apply_fn(None)

    # ------------------------------------------------------------------
    # opening and closing

    def _namei(self, proc, path: str) -> Inode:
        ua = proc.uarea
        return self.fs.namei(path, ua.cdir, ua.rdir, ua.cred())

    def sys_open(self, proc, path: str, flags: int, mode: int = 0o666):
        """Open (optionally creating) ``path``; returns the descriptor."""
        yield kdelay(self.costs.file_io_base)

        def apply():
            if self.fail("open.file"):
                raise SysError(ENFILE, "injected: file table full")
            ua = proc.uarea
            cred = ua.cred()
            try:
                inode = self._namei(proc, path)
                if flags & O_CREAT and flags & O_EXCL:
                    raise SysError(EEXIST, path)
            except SysError as err:
                if err.errno != ENOENT or not flags & O_CREAT:
                    raise
                parent, name = self.fs.namei_parent(path, ua.cdir, ua.rdir, cred)
                inode = self.fs.create(
                    parent, name, InodeType.REG, mode & ~ua.cmask, cred
                )
            accmode = flags & O_ACCMODE
            if accmode in (O_RDONLY, O_RDWR):
                inode.access(cred.uid, cred.gid, IREAD)
            if accmode in (O_WRONLY, O_RDWR):
                inode.require_not_dir()
                inode.access(cred.uid, cred.gid, IWRITE)
                if flags & O_TRUNC:
                    inode.truncate()
            file = File(inode, flags)
            if inode.itype is InodeType.FIFO and inode.fifo is not None:
                if file.readable:
                    inode.fifo.add_read_end()
                if file.writable:
                    inode.fifo.add_write_end()
            try:
                fd = proc.uarea.fdtable.alloc(file)
            except SysError:
                # Final-release bookkeeping undoes the FIFO endpoint
                # counts bumped above; without it an EMFILE open leaks
                # the endpoint and readers never see EOF.
                self.dispose_file(file)
                raise
            self.stats["opens"] += 1
            return fd
            yield  # pragma: no cover - marks this closure as a generator

        fd = yield from self._fd_update(proc, apply)
        return fd

    def sys_creat(self, proc, path: str, mode: int = 0o666):
        fd = yield from self.sys_open(proc, path, O_WRONLY | O_CREAT | O_TRUNC, mode)
        return fd

    def dispose_file(self, file: File) -> None:
        """Drop one reference; on final close do endpoint bookkeeping."""
        inode = file.inode
        socket = file.socket
        if file.release():
            if inode.itype is InodeType.FIFO and inode.fifo is not None:
                if file.readable:
                    inode.fifo.close_read_end()
                if file.writable:
                    inode.fifo.close_write_end()
            if socket is not None:
                socket.on_last_close()

    def sys_close(self, proc, fd: int):
        yield kdelay(self.costs.file_io_base)

        def apply():
            file = proc.uarea.fdtable.remove(fd)
            self.dispose_file(file)
            return 0
            yield  # pragma: no cover

        result = yield from self._fd_update(proc, apply)
        return result

    def sys_dup(self, proc, fd: int):
        yield kdelay(self.costs.file_io_base)

        def apply():
            return proc.uarea.fdtable.dup(fd)
            yield  # pragma: no cover

        newfd = yield from self._fd_update(proc, apply)
        return newfd

    def sys_dup2(self, proc, fd: int, newfd: int):
        yield kdelay(self.costs.file_io_base)

        def apply():
            table = proc.uarea.fdtable
            file = table.get(fd)
            if newfd != fd:
                old = table.slots[newfd] if 0 <= newfd < len(table.slots) else None
                if old is not None:
                    table.slots[newfd] = None
                    self.dispose_file(old)
                table.install_at(newfd, file.hold())
            return newfd
            yield  # pragma: no cover

        result = yield from self._fd_update(proc, apply)
        return result

    def sys_pipe(self, proc):
        """Create a pipe; returns ``(read_fd, write_fd)``."""
        yield kdelay(self.costs.file_io_base + self.costs.pipe_op)

        def apply():
            if self.fail("pipe.alloc"):
                raise SysError(ENFILE, "injected: no pipe buffer")
            inode = Inode(InodeType.FIFO, mode=0o600)
            inode.fifo = Pipe(self.machine, self.sched)
            reader = File(inode, O_RDONLY)
            writer = File(inode, O_WRONLY)
            table = proc.uarea.fdtable
            rfd = table.alloc(reader)
            try:
                wfd = table.alloc(writer)
            except SysError:
                table.remove(rfd)
                self.dispose_file(reader)
                raise
            self.stats["pipes"] += 1
            return rfd, wfd
            yield  # pragma: no cover

        fds = yield from self._fd_update(proc, apply)
        return fds

    # ------------------------------------------------------------------
    # data movement

    def _disk_sleep(self, proc):
        """Block the caller for the device latency (CPU stays free)."""
        from repro.sync.semaphore import Semaphore

        done = Semaphore(self.machine, self.sched, 0, "disk")
        self.engine.schedule(self.costs.disk_latency, done.v)
        yield from done.p(proc)

    def sys_read(self, proc, fd: int, nbytes: int):
        """Read up to ``nbytes``; returns host bytes (see also read_v)."""
        if nbytes < 0:
            raise SysError(EINVAL)
        file = proc.uarea.fdtable.get(fd)
        file.require_readable()
        yield kdelay(self.costs.file_io_base)
        inode = file.inode
        if file.socket is not None:
            data = yield from file.socket.recv(proc, nbytes, self)
            return data
        if inode.itype is InodeType.FIFO:
            yield kdelay(self.costs.pipe_op)
            data = yield from inode.fifo.read(proc, nbytes)
            yield kdelay(self.costs.copyio_per_word * _words(len(data)))
            return data
        if inode.itype is InodeType.CHR:
            data = inode.device.read(nbytes)
            return data
        yield from self._disk_sleep(proc)
        data = inode.read_at(file.offset, nbytes)
        file.offset += len(data)
        yield kdelay(self.costs.copyio_per_word * _words(len(data)))
        self.stats["bytes_read"] += len(data)
        self.pcount(proc, "bytes_read", len(data))
        self.trace("io", proc.pid, "read fd=%d n=%d" % (fd, len(data)))
        return data

    def sys_write(self, proc, fd: int, payload: bytes):
        """Write host bytes; returns the count written."""
        file = proc.uarea.fdtable.get(fd)
        file.require_writable()
        yield kdelay(self.costs.file_io_base)
        inode = file.inode
        if file.socket is not None:
            count = yield from file.socket.send(proc, payload, self)
            return count
        if inode.itype is InodeType.FIFO:
            yield kdelay(self.costs.pipe_op)
            yield kdelay(self.costs.copyio_per_word * _words(len(payload)))
            try:
                count = yield from inode.fifo.write(proc, payload)
            except BrokenPipe:
                self.psignal(proc, SIGPIPE)
                from repro.errors import EPIPE

                raise SysError(EPIPE)
            return count
        if inode.itype is InodeType.CHR:
            return inode.device.write(payload)
        if file.flags & O_APPEND:
            file.offset = inode.size
        if file.offset + len(payload) > proc.uarea.ulimit:
            raise SysError(EFBIG, "ulimit exceeded")
        yield from self._disk_sleep(proc)
        yield kdelay(self.costs.copyio_per_word * _words(len(payload)))
        count = inode.write_at(file.offset, payload)
        file.offset += count
        self.stats["bytes_written"] += count
        self.pcount(proc, "bytes_written", count)
        self.trace("io", proc.pid, "write fd=%d n=%d" % (fd, count))
        return count

    def sys_read_v(self, proc, fd: int, vaddr: int, nbytes: int):
        """POSIX-shaped read into a *guest* buffer; returns the count."""
        data = yield from self.sys_read(proc, fd, nbytes)
        if data:
            yield from self.copyout(proc, vaddr, data)
        return len(data)

    def sys_write_v(self, proc, fd: int, vaddr: int, nbytes: int):
        """POSIX-shaped write from a *guest* buffer; returns the count."""
        payload = yield from self.copyin(proc, vaddr, nbytes)
        count = yield from self.sys_write(proc, fd, payload)
        return count

    def sys_pread_v(self, proc, fd: int, vaddr: int, nbytes: int, offset: int):
        """Positional read into a guest buffer; the fd offset is untouched.

        The share-group variant of ``read_v``: ``PR_SFDS`` members share
        one file-table entry (and so one offset), forcing worker pools
        to serialize ``lseek``+``read`` under a user lock.  Carrying the
        offset in the call removes the shared state entirely — regular
        files only (pipes, sockets and devices have no positions).
        """
        if nbytes < 0 or offset < 0:
            raise SysError(EINVAL)
        file = proc.uarea.fdtable.get(fd)
        file.require_readable()
        yield kdelay(self.costs.file_io_base)
        inode = file.inode
        if file.socket is not None or inode.itype is not InodeType.REG:
            from repro.errors import ESPIPE

            raise SysError(ESPIPE, "pread needs a regular file")
        yield from self._disk_sleep(proc)
        data = inode.read_at(offset, nbytes)
        yield kdelay(self.costs.copyio_per_word * _words(len(data)))
        self.stats["bytes_read"] += len(data)
        self.pcount(proc, "bytes_read", len(data))
        self.trace("io", proc.pid, "pread fd=%d n=%d" % (fd, len(data)))
        if data:
            yield from self.copyout(proc, vaddr, data)
        return len(data)

    def sys_pwrite_v(self, proc, fd: int, vaddr: int, nbytes: int, offset: int):
        """Positional write from a guest buffer; the fd offset is untouched."""
        if nbytes < 0 or offset < 0:
            raise SysError(EINVAL)
        file = proc.uarea.fdtable.get(fd)
        file.require_writable()
        yield kdelay(self.costs.file_io_base)
        inode = file.inode
        if file.socket is not None or inode.itype is not InodeType.REG:
            from repro.errors import ESPIPE

            raise SysError(ESPIPE, "pwrite needs a regular file")
        if offset + nbytes > proc.uarea.ulimit:
            raise SysError(EFBIG, "ulimit exceeded")
        payload = yield from self.copyin(proc, vaddr, nbytes)
        yield from self._disk_sleep(proc)
        yield kdelay(self.costs.copyio_per_word * _words(len(payload)))
        count = inode.write_at(offset, payload)
        self.stats["bytes_written"] += count
        self.pcount(proc, "bytes_written", count)
        self.trace("io", proc.pid, "pwrite fd=%d n=%d" % (fd, count))
        return count

    def sys_lseek(self, proc, fd: int, offset: int, whence: int):
        yield kdelay(self.costs.file_io_base)
        file = proc.uarea.fdtable.get(fd)
        return file.seek(offset, whence)

    # ------------------------------------------------------------------
    # namespace

    def sys_mkdir(self, proc, path: str, mode: int = 0o777):
        yield kdelay(self.costs.file_io_base)
        ua = proc.uarea
        parent, name = self.fs.namei_parent(path, ua.cdir, ua.rdir, ua.cred())
        self.fs.create(parent, name, InodeType.DIR, mode & ~ua.cmask, ua.cred())
        return 0

    def sys_unlink(self, proc, path: str):
        yield kdelay(self.costs.file_io_base)
        ua = proc.uarea
        parent, name = self.fs.namei_parent(path, ua.cdir, ua.rdir, ua.cred())
        self.fs.unlink(parent, name, ua.cred())
        return 0

    def sys_link(self, proc, existing: str, newpath: str):
        """Create a hard link (directories excluded, classic rule)."""
        yield kdelay(self.costs.file_io_base)
        ua = proc.uarea
        node = self._namei(proc, existing)
        node.require_not_dir()
        parent, name = self.fs.namei_parent(newpath, ua.cdir, ua.rdir, ua.cred())
        if parent.dir_lookup(name) is not None:
            raise SysError(EEXIST, name)
        from repro.fs.inode import IWRITE

        parent.access(ua.uid, ua.gid, IWRITE)
        parent.dir_add(name, node)
        return 0

    def sys_ftruncate(self, proc, fd: int, length: int = 0):
        """Cut a regular file to ``length`` bytes."""
        yield kdelay(self.costs.file_io_base)
        file = proc.uarea.fdtable.get(fd)
        file.require_writable()
        file.inode.require_not_dir()
        if length < 0:
            raise SysError(EINVAL)
        del file.inode.data[length:]
        return 0

    def sys_readdir(self, proc, path: str):
        """Return the sorted entry names of a directory."""
        yield kdelay(self.costs.file_io_base)
        inode = self._namei(proc, path)
        inode.require_dir()
        from repro.fs.inode import IREAD

        inode.access(proc.uarea.uid, proc.uarea.gid, IREAD)
        return sorted(inode.entries)

    def sys_stat(self, proc, path: str):
        """Returns a small stat record (dict) for examples and tests."""
        yield kdelay(self.costs.file_io_base)
        inode = self._namei(proc, path)
        return _stat_record(inode)

    def sys_fstat(self, proc, fd: int):
        yield kdelay(self.costs.file_io_base)
        file = proc.uarea.fdtable.get(fd)
        return _stat_record(file.inode)

    # ------------------------------------------------------------------
    # directories, umask, ulimit, identity (shared resources)

    def sys_chdir(self, proc, path: str):
        yield kdelay(self.costs.file_io_base)
        inode = self._namei(proc, path)
        inode.require_dir()
        inode.access(proc.uarea.uid, proc.uarea.gid, IEXEC)

        def apply(shaddr):
            proc.uarea.set_cdir(inode)
            if shaddr is not None:
                shaddr.set_dirs(proc.uarea.cdir, proc.uarea.rdir)
                shaddr.updates["dir"] += 1
            return 0

        result = yield from self._misc_update(proc, PR_SDIR, apply)
        return result

    def sys_chroot(self, proc, path: str):
        yield kdelay(self.costs.file_io_base)
        if proc.uarea.uid != 0:
            raise SysError(EPERM)
        inode = self._namei(proc, path)
        inode.require_dir()

        def apply(shaddr):
            proc.uarea.set_rdir(inode)
            if shaddr is not None:
                shaddr.set_dirs(proc.uarea.cdir, proc.uarea.rdir)
                shaddr.updates["dir"] += 1
            return 0

        result = yield from self._misc_update(proc, PR_SDIR, apply)
        return result

    def sys_umask(self, proc, new_mask: int):
        yield kdelay(self.costs.flag_batch_test)

        def apply(shaddr):
            old = proc.uarea.cmask
            proc.uarea.cmask = new_mask & 0o777
            if shaddr is not None:
                shaddr.s_cmask = proc.uarea.cmask
                shaddr.updates["umask"] += 1
            return old

        old = yield from self._misc_update(proc, PR_SUMASK, apply)
        return old

    def sys_ulimit(self, proc, cmd: int, value: int = 0):
        """cmd 1: get file size limit; cmd 2: set it (raise needs root)."""
        yield kdelay(self.costs.flag_batch_test)
        if cmd == 1:
            return proc.uarea.ulimit
        if cmd != 2:
            raise SysError(EINVAL)
        if value > proc.uarea.ulimit and proc.uarea.uid != 0:
            raise SysError(EPERM, "only root may raise ulimit")

        def apply(shaddr):
            proc.uarea.ulimit = value
            if shaddr is not None:
                shaddr.s_limit = value
                shaddr.updates["ulimit"] += 1
            return value

        result = yield from self._misc_update(proc, PR_SULIMIT, apply)
        return result

    def sys_getuid(self, proc):
        yield kdelay(self.costs.flag_batch_test)
        return proc.uarea.uid

    def sys_getgid(self, proc):
        yield kdelay(self.costs.flag_batch_test)
        return proc.uarea.gid

    def sys_setuid(self, proc, uid: int):
        yield kdelay(self.costs.flag_batch_test)
        if proc.uarea.uid != 0 and uid != proc.uarea.uid:
            raise SysError(EPERM)

        def apply(shaddr):
            proc.uarea.uid = uid
            if shaddr is not None:
                shaddr.s_uid = uid
                shaddr.updates["id"] += 1
            return 0

        result = yield from self._misc_update(proc, PR_SID, apply)
        return result

    def sys_setgid(self, proc, gid: int):
        yield kdelay(self.costs.flag_batch_test)
        if proc.uarea.uid != 0 and gid != proc.uarea.gid:
            raise SysError(EPERM)

        def apply(shaddr):
            proc.uarea.gid = gid
            if shaddr is not None:
                shaddr.s_gid = gid
                shaddr.updates["id"] += 1
            return 0

        result = yield from self._misc_update(proc, PR_SID, apply)
        return result


def _stat_record(inode: Inode) -> dict:
    return {
        "ino": inode.ino,
        "type": inode.itype.value,
        "mode": inode.mode,
        "uid": inode.uid,
        "gid": inode.gid,
        "nlink": inode.nlink,
        "size": inode.size,
    }
