"""Virtual memory access: TLB refill, page faults, copyin/copyout.

This is where the paper's section 6.2 machinery runs.  Every miss walks
the process's pregion lists — private first, then shared — under the
share group's shared read lock.  Demand-zero fills and copy-on-write
breaks are *scans* (they change what page-table slots point to, which the
region protocol permits under the read lock because slot mutation is
atomic); stack growth changes the pregion list itself and therefore
upgrades to the update lock.

A user-mode SEGV posts SIGSEGV and delivers it inline: with the default
disposition the process dies right there; with a handler installed the
faulting access retries after the handler returns (so a handler that
repairs the mapping — e.g. by calling ``mmap`` — resumes the program,
just like on real hardware).
"""

from __future__ import annotations

from repro.errors import EFAULT, SysError
from repro.kernel.signals import SIGKILL, SIGSEGV
from repro.mem.addrspace import Fault
from repro.mem.frames import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE
from repro.share import vmshare
from repro.sim.effects import kdelay, udelay


def _words(nbytes: int) -> int:
    return (nbytes + 3) // 4


class FaultMixin:
    """Kernel methods for translating and touching user memory."""

    #: lazily interned Delay for a one-word user access — the cost is a
    #: constant of the cost model, so the hottest guest operations
    #: (load_word/store_word) skip both the arithmetic and the cache
    #: lookup in :func:`udelay`
    _word_delay = None

    # ------------------------------------------------------------------
    # the central translate-or-fault path

    def vm_hit(self, proc, vaddr: int, write: bool):
        """Plain-function TLB probe: the Frame on a usable hit, else None.

        The hot user load/store paths call this before falling into the
        :meth:`vm_handle` generator, so a warm-TLB access pays no
        generator setup at all.  Statistics match ``vm_handle`` exactly
        (``lookup`` counts the hit or miss); a ``None`` return must be
        followed by ``vm_handle(..., prelooked=True)`` so the probe is
        not re-counted.
        """
        # open-coded TLB.lookup (same statistics): this probe runs on
        # every user load/store, so the extra call layer shows up
        tlb = proc.cpu.tlb
        entry = tlb._entries.get((proc.vm.asid, vaddr >> PAGE_SHIFT))
        if entry is None:
            tlb.misses += 1
            return None
        tlb.hits += 1
        if not write or entry.writable:
            return self.machine.frames.get(entry.pfn)
        return None

    def vm_handle(self, proc, vaddr: int, write: bool, user: bool, info=None,
                  prelooked: bool = False):
        """Generator: return the Frame backing ``vaddr``, faulting as needed.

        ``info`` (optional dict) receives the final resolution —
        ``kind``/``pregion``/``page_index`` — so callers like
        :meth:`_copy_fault` need no separate ``find`` pass over the
        pregion lists.  ``prelooked`` means the caller already probed
        (and counted) the TLB via :meth:`vm_hit` and missed.
        """
        cpu = proc.cpu
        tlb = cpu.tlb
        asid = proc.vm.asid
        vpn = vaddr >> PAGE_SHIFT
        if not prelooked:
            entry = tlb.lookup(asid, vpn)
            if entry is not None and (not write or entry.writable):
                if info is not None:
                    info["kind"] = Fault.HIT
                    info["pregion"] = None
                    info["page_index"] = -1
                return self.machine.frames.get(entry.pfn)

        # Software refill: trap, walk the pregion lists under the lock.
        yield kdelay(self.costs.tlb_refill)
        profile = self.machine.profile
        locked = "none"
        if vmshare.sharing_vm(proc):
            yield from vmshare.read_acquire(proc)
            locked = "read"
        try:
            while True:
                if profile.enabled:
                    t0 = profile.clock()
                    res = proc.vm.resolve(vaddr, write)
                    profile.leaf("fault.resolve", t0)
                else:
                    res = proc.vm.resolve(vaddr, write)
                kind = res.kind
                if info is not None:
                    info["kind"] = kind
                    info["pregion"] = res.pregion
                    info["page_index"] = res.page_index
                if kind is Fault.HIT:
                    frame = res.pregion.region.pages[res.page_index]
                    writable = proc.vm.writable_now(res.pregion, res.page_index)
                    tlb.insert(asid, vpn, frame.pfn, writable)
                    return frame
                if kind is Fault.ZERO or kind is Fault.COW:
                    proc.faults += 1
                    self.stats["faults"] += 1
                    self.pcount(proc, "fault." + kind.value)
                    self.trace(
                        "fault", proc.pid, "%s @%#x" % (kind.value, vaddr)
                    )
                    fill = (
                        self.costs.page_zero if kind is Fault.ZERO
                        else self.costs.page_copy
                    )
                    yield kdelay(self.costs.fault_entry + fill)
                    try:
                        if self.fail("fault." + kind.value):
                            raise MemoryError("injected at fault." + kind.value)
                        frame = proc.vm.materialize(res, vaddr, write)
                    except MemoryError:
                        mode, locked = locked, "none"
                        yield from self._out_of_memory(proc, user, mode)
                        continue
                    self.pcount(proc, "pages_touched")
                    writable = proc.vm.writable_now(res.pregion, res.page_index)
                    tlb.insert(asid, vpn, frame.pfn, writable)
                    return frame
                if kind is Fault.GROW:
                    if locked == "read":
                        # Growth edits the pregion list: upgrade to the
                        # update lock and re-resolve (someone else may
                        # have grown the stack meanwhile).
                        yield from vmshare.read_release(proc)
                        yield from vmshare.update_acquire(proc)
                        locked = "update"
                        continue
                    proc.faults += 1
                    self.stats["faults"] += 1
                    self.stats["stack_grows"] += 1
                    self.pcount(proc, "fault.grow")
                    self.trace("fault", proc.pid, "grow @%#x" % vaddr)
                    yield kdelay(self.costs.fault_entry + self.costs.page_zero)
                    try:
                        if self.fail("fault.grow"):
                            raise MemoryError("injected at fault.grow")
                        frame = proc.vm.materialize(res, vaddr, write)
                    except MemoryError:
                        mode, locked = locked, "none"
                        yield from self._out_of_memory(proc, user, mode)
                        continue
                    self.pcount(proc, "pages_touched")
                    tlb.insert(asid, vpn, frame.pfn, True)
                    return frame
                # SEGV
                if not user:
                    raise SysError(EFAULT, "bad user address %#x" % vaddr)
                if locked == "read":
                    yield from vmshare.read_release(proc)
                elif locked == "update":
                    yield from vmshare.update_release(proc)
                locked = "none"
                self.stats["segv"] += 1
                self.pcount(proc, "fault.segv")
                self.trace("fault", proc.pid, "segv @%#x" % vaddr)
                self.psignal(proc, SIGSEGV)
                yield from self.deliver_pending(proc)
                # A handler survived and (maybe) repaired the mapping:
                # retry the access, taking the lock again.
                if vmshare.sharing_vm(proc):
                    yield from vmshare.read_acquire(proc)
                    locked = "read"
        finally:
            if locked == "read":
                yield from vmshare.read_release(proc)
            elif locked == "update":
                yield from vmshare.update_release(proc)

    def _out_of_memory(self, proc, user: bool, locked: str):
        """Generator: physical memory exhausted mid-fault.

        Kernel copies report ``ENOMEM``; a faulting user access kills the
        process (SIGKILL — there is nowhere to return to), the classic
        no-swap OOM policy.  Locks are dropped first so the rest of the
        group keeps running.
        """
        if locked == "read":
            yield from vmshare.read_release(proc)
        elif locked == "update":
            yield from vmshare.update_release(proc)
        self.stats["oom_kills"] += 1
        if not user:
            from repro.errors import ENOMEM

            raise SysError(ENOMEM, "out of physical memory")
        self.psignal(proc, SIGKILL)
        yield from self.deliver_pending(proc)
        raise AssertionError("unreachable: SIGKILL delivered")  # pragma: no cover

    # ------------------------------------------------------------------
    # TLB maintenance for non-shared spaces

    def tlb_invalidate_range(self, proc, vpn_lo: int, vpn_hi: int):
        """Generator: invalidate one VPN window of a non-shared space.

        No shootdown protocol is needed — nobody else runs this address
        space — but stale translations may linger on CPUs the process
        migrated away from.  The indexed mode drops just the affected
        window; the ``vm_index="linear"`` ablation reproduces the old
        full per-ASID flush bit-identically.
        """
        if self.machine.vm_index == "linear":
            for cpu in self.machine.cpus:
                cpu.tlb.flush_asid(proc.vm.asid)
        else:
            self.machine.tlb_flush_range(proc.vm.asid, vpn_lo, vpn_hi)
        yield kdelay(self.costs.tlb_flush_local)

    # ------------------------------------------------------------------
    # kernel <-> user copies (used by read/write/exec argument paths)

    def _copy_fault(self, proc, addr: int, write: bool, touched):
        """Generator: resolve one page of a multi-page kernel copy.

        A copy that faults in page N and then fails on page N+1 (ENOMEM,
        EFAULT) must not keep the frames it already grabbed: ``touched``
        accumulates pages this copy newly materialized, and any SysError
        rolls them all back before propagating.  Only demand-zero pages
        of an already-found pregion qualify — a COW break was resident
        before, and stack growth changes the pregion list itself.

        The resolution that ``vm_handle`` already performed tells us
        which case we hit, so no second walk of the pregion lists is
        needed.
        """
        frame = self.vm_hit(proc, addr, write)
        if frame is not None:
            return frame  # a warm hit can never have materialized a page
        info = {}
        try:
            frame = yield from self.vm_handle(
                proc, addr, write=write, user=False, info=info, prelooked=True
            )
        except SysError:
            self._rollback_copy_pages(proc, touched)
            raise
        if info.get("kind") is Fault.ZERO:
            touched.append(
                (info["pregion"], info["page_index"], addr >> PAGE_SHIFT)
            )
        return frame

    def _rollback_copy_pages(self, proc, touched) -> None:
        """Release pages a failed multi-page kernel copy materialized.

        A page still singly referenced reverts to demand-zero (frame
        released, TLB entry flushed everywhere); a frame some other
        space holds a COW reference to meanwhile stays.
        """
        for pregion, index, vpn in reversed(touched):
            frame = pregion.region.pages[index]
            if frame is None or frame.refcount != 1:
                continue
            pregion.region.pages[index] = None
            self.machine.frames.release(frame)
            self.machine.tlb_flush_page(proc.vm.asid, vpn)

    def copyin(self, proc, vaddr: int, nbytes: int):
        """Generator: fetch ``nbytes`` of user memory into host bytes."""
        out = bytearray()
        addr = vaddr
        remaining = nbytes
        touched = []
        while remaining > 0:
            frame = yield from self._copy_fault(proc, addr, False, touched)
            offset = addr & PAGE_MASK
            take = min(remaining, PAGE_SIZE - offset)
            out += frame.data[offset:offset + take]
            yield kdelay(self.costs.copyio_per_word * _words(take))
            addr += take
            remaining -= take
        return bytes(out)

    def copyout(self, proc, vaddr: int, payload: bytes):
        """Generator: store host bytes into user memory."""
        addr = vaddr
        index = 0
        touched = []
        while index < len(payload):
            frame = yield from self._copy_fault(proc, addr, True, touched)
            offset = addr & PAGE_MASK
            take = min(len(payload) - index, PAGE_SIZE - offset)
            frame.data[offset:offset + take] = payload[index:index + take]
            yield kdelay(self.costs.copyio_per_word * _words(take))
            addr += take
            index += take
        return len(payload)

    # ------------------------------------------------------------------
    # user-mode memory operations (the program's loads and stores)

    def user_read(self, proc, vaddr: int, nbytes: int):
        """Generator: a user-mode load of ``nbytes`` (may span pages).

        The within-one-page case — almost every access — skips the
        span loop and the bytearray staging; cost and TLB accounting
        are identical either way.
        """
        offset = vaddr & PAGE_MASK
        if 0 < nbytes <= PAGE_SIZE - offset:
            yield udelay(
                self.costs.mem_access + self.costs.mem_per_word * _words(nbytes)
            )
            frame = self.vm_hit(proc, vaddr, False)
            if frame is None:
                frame = yield from self.vm_handle(
                    proc, vaddr, write=False, user=True, prelooked=True
                )
            return bytes(frame.data[offset:offset + nbytes])
        out = bytearray()
        addr = vaddr
        remaining = nbytes
        while remaining > 0:
            offset = addr & PAGE_MASK
            take = min(remaining, PAGE_SIZE - offset)
            yield udelay(self.costs.mem_access + self.costs.mem_per_word * _words(take))
            frame = self.vm_hit(proc, addr, False)
            if frame is None:
                frame = yield from self.vm_handle(
                    proc, addr, write=False, user=True, prelooked=True
                )
            out += frame.data[offset:offset + take]
            addr += take
            remaining -= take
        return bytes(out)

    def user_write(self, proc, vaddr: int, payload: bytes):
        """Generator: a user-mode store (single-page fast path as above)."""
        nbytes = len(payload)
        offset = vaddr & PAGE_MASK
        if 0 < nbytes <= PAGE_SIZE - offset:
            yield udelay(
                self.costs.mem_access + self.costs.mem_per_word * _words(nbytes)
            )
            frame = self.vm_hit(proc, vaddr, True)
            if frame is None:
                frame = yield from self.vm_handle(
                    proc, vaddr, write=True, user=True, prelooked=True
                )
            frame.data[offset:offset + nbytes] = payload
            return nbytes
        addr = vaddr
        index = 0
        while index < len(payload):
            offset = addr & PAGE_MASK
            take = min(len(payload) - index, PAGE_SIZE - offset)
            yield udelay(self.costs.mem_access + self.costs.mem_per_word * _words(take))
            frame = self.vm_hit(proc, addr, True)
            if frame is None:
                frame = yield from self.vm_handle(
                    proc, addr, write=True, user=True, prelooked=True
                )
            frame.data[offset:offset + take] = payload[index:index + take]
            addr += take
            index += take
        return len(payload)

    def user_load_word(self, proc, vaddr: int):
        """Generator: load an aligned 32-bit little-endian word.

        Single-page direct path in the :meth:`user_cas` idiom — same
        charged cost and same TLB accounting as ``user_read(.., 4)``,
        without the span loop, the bytearray staging or the extra
        generator frame.  A page-straddling (misaligned) word falls
        back to the general path.
        """
        offset = vaddr & PAGE_MASK
        if offset > PAGE_SIZE - 4:
            raw = yield from self.user_read(proc, vaddr, 4)
            return int.from_bytes(raw, "little")
        delay = self._word_delay
        if delay is None:
            delay = self._word_delay = udelay(
                self.costs.mem_access + self.costs.mem_per_word
            )
        yield delay
        frame = self.vm_hit(proc, vaddr, False)
        if frame is None:
            frame = yield from self.vm_handle(
                proc, vaddr, write=False, user=True, prelooked=True
            )
        return int.from_bytes(frame.data[offset:offset + 4], "little")

    def user_store_word(self, proc, vaddr: int, value: int):
        """Generator: store an aligned 32-bit little-endian word."""
        offset = vaddr & PAGE_MASK
        if offset > PAGE_SIZE - 4:
            yield from self.user_write(
                proc, vaddr, (value & 0xFFFFFFFF).to_bytes(4, "little")
            )
            return
        delay = self._word_delay
        if delay is None:
            delay = self._word_delay = udelay(
                self.costs.mem_access + self.costs.mem_per_word
            )
        yield delay
        frame = self.vm_hit(proc, vaddr, True)
        if frame is None:
            frame = yield from self.vm_handle(
                proc, vaddr, write=True, user=True, prelooked=True
            )
        frame.data[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def user_cas(self, proc, vaddr: int, expected: int, new: int):
        """Generator: atomic compare-and-swap on a 32-bit word.

        Returns the value observed.  The read-modify-write happens with
        no intervening yield, which is the simulation's model of an
        interlocked bus operation.
        """
        yield udelay(self.costs.cas)
        frame = self.vm_hit(proc, vaddr, True)
        if frame is None:
            frame = yield from self.vm_handle(
                proc, vaddr, write=True, user=True, prelooked=True
            )
        offset = vaddr & PAGE_MASK
        old = int.from_bytes(frame.data[offset:offset + 4], "little")
        if old == expected:
            frame.data[offset:offset + 4] = (new & 0xFFFFFFFF).to_bytes(4, "little")
        return old

    def user_fetch_add(self, proc, vaddr: int, delta: int):
        """Generator: atomic fetch-and-add; returns the *previous* value."""
        yield udelay(self.costs.cas)
        frame = self.vm_hit(proc, vaddr, True)
        if frame is None:
            frame = yield from self.vm_handle(
                proc, vaddr, write=True, user=True, prelooked=True
            )
        offset = vaddr & PAGE_MASK
        old = int.from_bytes(frame.data[offset:offset + 4], "little")
        new = (old + delta) & 0xFFFFFFFF
        frame.data[offset:offset + 4] = new.to_bytes(4, "little")
        return old
