"""The user-side system call interface.

Each simulated process holds a :class:`UserAPI` bound to it.  Program
code makes system calls with ``yield from``:

    def main(api, arg):
        fd = yield from api.open("/tmp/data", O_RDONLY)
        data = yield from api.read(fd, 128)
        yield from api.close(fd)
        return 0

Every call runs through the kernel trampoline (entry cost, share-group
sync check, handler, signal delivery, exit cost) and follows the System V
convention: ``-1`` on failure with the error number stored in the PRDA
``errno`` slot (read it with :meth:`UserAPI.errno`).

Memory operations (:meth:`load`, :meth:`store`, :meth:`cas` ...) are not
system calls — they are user-mode instructions that go through the TLB
and may page-fault.
"""

from __future__ import annotations

from repro.fs.file import O_RDONLY, SEEK_SET
from repro.kernel.kernel import ERRNO_OFFSET, Kernel
from repro.mem import layout
from repro.sim.effects import Yield, udelay


class UserAPI:
    """Syscall stubs and user-mode instructions for one process."""

    def __init__(self, kernel: Kernel, proc):
        self.kernel = kernel
        self.proc = proc

    def __repr__(self) -> str:  # pragma: no cover
        return "<UserAPI pid=%d>" % self.proc.pid

    # ------------------------------------------------------------------
    # plumbing

    def _call(self, handler):
        # Returns the trampoline generator directly rather than
        # wrapping it in ``yield from``: the caller's ``yield from``
        # delegates to it identically, and every effect it yields
        # traverses one generator frame fewer on the host.
        return self.kernel.syscall(self.proc, handler)

    # ------------------------------------------------------------------
    # user-mode instructions (no kernel entry unless they fault)

    def compute(self, cycles: int):
        """Burn CPU in user mode (preemptible)."""
        yield udelay(cycles)

    def yield_cpu(self):
        """Voluntarily give up the processor."""
        yield Yield()

    # The memory instructions hand back the kernel generator directly
    # (no wrapper frame): ``yield from`` delegation and the returned
    # value are identical either way, and the hot load/store paths are
    # one frame shallower per effect on the host.

    def load(self, vaddr: int, nbytes: int):
        return self.kernel.user_read(self.proc, vaddr, nbytes)

    def store(self, vaddr: int, payload: bytes):
        return self.kernel.user_write(self.proc, vaddr, payload)

    def load_word(self, vaddr: int):
        return self.kernel.user_load_word(self.proc, vaddr)

    def store_word(self, vaddr: int, value: int):
        return self.kernel.user_store_word(self.proc, vaddr, value)

    def cas(self, vaddr: int, expected: int, new: int):
        """Atomic compare-and-swap; returns the observed value."""
        return self.kernel.user_cas(self.proc, vaddr, expected, new)

    def fetch_add(self, vaddr: int, delta: int):
        """Atomic fetch-and-add; returns the previous value."""
        return self.kernel.user_fetch_add(self.proc, vaddr, delta)

    def errno(self):
        """Read errno from the PRDA (a user-mode load, as in the paper)."""
        value = yield from self.load_word(layout.PRDA_BASE + ERRNO_OFFSET)
        return value

    # ------------------------------------------------------------------
    # host-side observability (free: simulation instrumentation)

    @property
    def now(self) -> int:
        """Current simulated time in cycles (instrumentation only)."""
        return self.kernel.engine.now

    @property
    def pid(self) -> int:
        return self.proc.pid

    # ------------------------------------------------------------------
    # process lifecycle

    def fork(self, entry, arg=0):
        result = yield from self._call(self.kernel.sys_fork(self.proc, entry, arg))
        return result

    def sproc(self, entry, shmask: int, arg=0):
        result = yield from self._call(
            self.kernel.sys_sproc(self.proc, entry, shmask, arg)
        )
        return result

    def exec(self, path: str, arg=0, keep_group: bool = False):
        result = yield from self._call(
            self.kernel.sys_exec(self.proc, path, arg, keep_group)
        )
        return result

    def exit(self, code: int = 0):
        yield from self._call(self.kernel.sys_exit(self.proc, code))

    def wait(self):
        result = yield from self._call(self.kernel.sys_wait(self.proc))
        return result

    def kill(self, pid: int, sig: int):
        result = yield from self._call(self.kernel.sys_kill(self.proc, pid, sig))
        return result

    def signal(self, sig: int, handler):
        result = yield from self._call(self.kernel.sys_signal(self.proc, sig, handler))
        return result

    def pause(self):
        result = yield from self._call(self.kernel.sys_pause(self.proc))
        return result

    def uwait(self, vaddr: int, expected: int):
        """Sleep while the shared word equals ``expected`` (futex-style;
        extension — see kernel/usync.py)."""
        result = yield from self._call(
            self.kernel.sys_uwait(self.proc, vaddr, expected)
        )
        return result

    def uwake(self, vaddr: int, count: int = 1):
        """Wake up to ``count`` uwait sleepers on the word."""
        result = yield from self._call(
            self.kernel.sys_uwake(self.proc, vaddr, count)
        )
        return result

    def blockproc(self, pid: int):
        """Suspend a process (section 8 extension; IRIX blockproc)."""
        result = yield from self._call(self.kernel.sys_blockproc(self.proc, pid))
        return result

    def unblockproc(self, pid: int):
        result = yield from self._call(self.kernel.sys_unblockproc(self.proc, pid))
        return result

    def alarm(self, cycles: int):
        """Arm (or with 0, cancel) a SIGALRM timer, in cycles."""
        result = yield from self._call(self.kernel.sys_alarm(self.proc, cycles))
        return result

    def getpid(self):
        result = yield from self._call(self.kernel.sys_getpid(self.proc))
        return result

    def getppid(self):
        result = yield from self._call(self.kernel.sys_getppid(self.proc))
        return result

    def nice(self, incr: int):
        result = yield from self._call(self.kernel.sys_nice(self.proc, incr))
        return result

    def prctl(self, option: int, value: int = 0, value2: int = 0):
        result = yield from self._call(
            self.kernel.sys_prctl(self.proc, option, value, value2)
        )
        return result

    # ------------------------------------------------------------------
    # address space

    def sbrk(self, incr: int):
        result = yield from self._call(self.kernel.sys_sbrk(self.proc, incr))
        return result

    def mmap(self, nbytes: int):
        result = yield from self._call(self.kernel.sys_mmap(self.proc, nbytes))
        return result

    def munmap(self, vaddr: int):
        result = yield from self._call(self.kernel.sys_munmap(self.proc, vaddr))
        return result

    # ------------------------------------------------------------------
    # files

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o666):
        result = yield from self._call(
            self.kernel.sys_open(self.proc, path, flags, mode)
        )
        return result

    def creat(self, path: str, mode: int = 0o666):
        result = yield from self._call(self.kernel.sys_creat(self.proc, path, mode))
        return result

    def close(self, fd: int):
        result = yield from self._call(self.kernel.sys_close(self.proc, fd))
        return result

    def read(self, fd: int, nbytes: int):
        """Read into a host buffer; returns bytes (or -1 on error)."""
        result = yield from self._call(self.kernel.sys_read(self.proc, fd, nbytes))
        return result

    def write(self, fd: int, payload: bytes):
        result = yield from self._call(self.kernel.sys_write(self.proc, fd, payload))
        return result

    def read_v(self, fd: int, vaddr: int, nbytes: int):
        """POSIX-shaped read into guest memory; returns the byte count."""
        result = yield from self._call(
            self.kernel.sys_read_v(self.proc, fd, vaddr, nbytes)
        )
        return result

    def write_v(self, fd: int, vaddr: int, nbytes: int):
        result = yield from self._call(
            self.kernel.sys_write_v(self.proc, fd, vaddr, nbytes)
        )
        return result

    def pread_v(self, fd: int, vaddr: int, nbytes: int, offset: int):
        """Positional read into guest memory (fd offset untouched)."""
        result = yield from self._call(
            self.kernel.sys_pread_v(self.proc, fd, vaddr, nbytes, offset)
        )
        return result

    def pwrite_v(self, fd: int, vaddr: int, nbytes: int, offset: int):
        """Positional write from guest memory (fd offset untouched)."""
        result = yield from self._call(
            self.kernel.sys_pwrite_v(self.proc, fd, vaddr, nbytes, offset)
        )
        return result

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET):
        result = yield from self._call(
            self.kernel.sys_lseek(self.proc, fd, offset, whence)
        )
        return result

    def dup(self, fd: int):
        result = yield from self._call(self.kernel.sys_dup(self.proc, fd))
        return result

    def dup2(self, fd: int, newfd: int):
        result = yield from self._call(self.kernel.sys_dup2(self.proc, fd, newfd))
        return result

    def pipe(self):
        """Returns ``(read_fd, write_fd)`` or -1."""
        result = yield from self._call(self.kernel.sys_pipe(self.proc))
        return result

    def mkdir(self, path: str, mode: int = 0o777):
        result = yield from self._call(self.kernel.sys_mkdir(self.proc, path, mode))
        return result

    def link(self, existing: str, newpath: str):
        result = yield from self._call(
            self.kernel.sys_link(self.proc, existing, newpath)
        )
        return result

    def ftruncate(self, fd: int, length: int = 0):
        result = yield from self._call(
            self.kernel.sys_ftruncate(self.proc, fd, length)
        )
        return result

    def readdir(self, path: str):
        """Directory entry names (a list), or -1."""
        result = yield from self._call(self.kernel.sys_readdir(self.proc, path))
        return result

    def unlink(self, path: str):
        result = yield from self._call(self.kernel.sys_unlink(self.proc, path))
        return result

    def stat(self, path: str):
        result = yield from self._call(self.kernel.sys_stat(self.proc, path))
        return result

    def fstat(self, fd: int):
        result = yield from self._call(self.kernel.sys_fstat(self.proc, fd))
        return result

    def chdir(self, path: str):
        result = yield from self._call(self.kernel.sys_chdir(self.proc, path))
        return result

    def chroot(self, path: str):
        result = yield from self._call(self.kernel.sys_chroot(self.proc, path))
        return result

    def umask(self, mask: int):
        result = yield from self._call(self.kernel.sys_umask(self.proc, mask))
        return result

    def ulimit(self, cmd: int, value: int = 0):
        result = yield from self._call(self.kernel.sys_ulimit(self.proc, cmd, value))
        return result

    # ------------------------------------------------------------------
    # identity

    def getuid(self):
        result = yield from self._call(self.kernel.sys_getuid(self.proc))
        return result

    def getgid(self):
        result = yield from self._call(self.kernel.sys_getgid(self.proc))
        return result

    def setuid(self, uid: int):
        result = yield from self._call(self.kernel.sys_setuid(self.proc, uid))
        return result

    def setgid(self, gid: int):
        result = yield from self._call(self.kernel.sys_setgid(self.proc, gid))
        return result

    # ------------------------------------------------------------------
    # System V IPC

    def shmget(self, key: int, nbytes: int, flags: int = 0):
        result = yield from self._call(
            self.kernel.sys_shmget(self.proc, key, nbytes, flags)
        )
        return result

    def shmat(self, shmid: int):
        result = yield from self._call(self.kernel.sys_shmat(self.proc, shmid))
        return result

    def shmdt(self, vaddr: int):
        result = yield from self._call(self.kernel.sys_shmdt(self.proc, vaddr))
        return result

    def shm_rmid(self, shmid: int):
        """IPC_RMID: destroy the segment once all attaches are gone."""
        result = yield from self._call(
            self.kernel.sys_shmctl_rmid(self.proc, shmid)
        )
        return result

    def semget(self, key: int, nsems: int, flags: int = 0):
        result = yield from self._call(
            self.kernel.sys_semget(self.proc, key, nsems, flags)
        )
        return result

    def semop(self, semid: int, ops):
        result = yield from self._call(self.kernel.sys_semop(self.proc, semid, ops))
        return result

    def msgget(self, key: int, flags: int = 0):
        result = yield from self._call(self.kernel.sys_msgget(self.proc, key, flags))
        return result

    def msgsnd(self, msqid: int, mtype: int, payload: bytes):
        result = yield from self._call(
            self.kernel.sys_msgsnd(self.proc, msqid, mtype, payload)
        )
        return result

    def msgrcv(self, msqid: int, mtype: int = 0, max_bytes: int = 1 << 20):
        result = yield from self._call(
            self.kernel.sys_msgrcv(self.proc, msqid, mtype, max_bytes)
        )
        return result

    # ------------------------------------------------------------------
    # sockets

    def socket(self):
        result = yield from self._call(self.kernel.sys_socket(self.proc))
        return result

    def socketpair(self):
        result = yield from self._call(self.kernel.sys_socketpair(self.proc))
        return result

    def bind(self, fd: int, name: str):
        result = yield from self._call(self.kernel.sys_bind(self.proc, fd, name))
        return result

    def listen(self, fd: int, backlog: int = 5):
        result = yield from self._call(self.kernel.sys_listen(self.proc, fd, backlog))
        return result

    def connect(self, fd: int, name: str):
        result = yield from self._call(self.kernel.sys_connect(self.proc, fd, name))
        return result

    def accept(self, fd: int):
        result = yield from self._call(self.kernel.sys_accept(self.proc, fd))
        return result

    def send(self, fd: int, payload: bytes):
        result = yield from self._call(self.kernel.sys_send(self.proc, fd, payload))
        return result

    def recv(self, fd: int, nbytes: int):
        result = yield from self._call(self.kernel.sys_recv(self.proc, fd, nbytes))
        return result

    def sendfd(self, fd: int, passed_fd: int):
        """Pass a descriptor over a socket (the BSD-style baseline)."""
        result = yield from self._call(
            self.kernel.sys_sendfd(self.proc, fd, passed_fd)
        )
        return result

    def recvfd(self, fd: int):
        result = yield from self._call(self.kernel.sys_recvfd(self.proc, fd))
        return result

    # ------------------------------------------------------------------
    # Mach-style threads (the comparison baseline)

    def thread_create(self, entry, arg=0):
        result = yield from self._call(
            self.kernel.sys_thread_create(self.proc, entry, arg)
        )
        return result

    def thread_join(self):
        result = yield from self._call(self.kernel.sys_thread_join(self.proc))
        return result
