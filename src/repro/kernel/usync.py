"""Kernel-assisted blocking on user words: ``uwait``/``uwake``.

EXTENSION beyond the 1988 paper, but the historically next step it set
up: the paper's section 3 argues busy-waiting is the fast path, and its
section 8 worries about what happens when spinners outnumber processors
(hence the gang hint).  IRIX's later *usync* facility — and eventually
Linux's futex — resolved the tension the other way: spin briefly, then
ask the kernel to sleep until another process pokes the same word.

``uwait(vaddr, expected)`` sleeps only if the word still holds
``expected`` (checked under the kernel's hash-chain lock, so a wake
between the user-mode check and the call is never lost);
``uwake(vaddr, count)`` wakes up to ``count`` sleepers.  Queues are
keyed by ``(asid, vaddr)`` — sharing the address space is what makes two
processes' waits meet, which is pleasingly share-group-shaped.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import EINTR, SysError
from repro.sim.effects import kdelay
from repro.sync.semaphore import Semaphore


class _WaitChannel:
    __slots__ = ("sema", "waiters")

    def __init__(self, machine, waker, name):
        self.sema = Semaphore(machine, waker, 0, name)
        self.waiters = 0


class UsyncSyscalls:
    """Kernel mixin: the uwait/uwake pair."""

    def init_usync(self) -> None:
        self._usync: Dict[Tuple[int, int], _WaitChannel] = {}

    def _usync_channel(self, asid: int, vaddr: int) -> _WaitChannel:
        key = (asid, vaddr)
        channel = self._usync.get(key)
        if channel is None:
            channel = _WaitChannel(
                self.machine, self.sched, "uwait@%#x" % vaddr
            )
            self._usync[key] = channel
        return channel

    def sys_uwait(self, proc, vaddr: int, expected: int):
        """Sleep while the user word equals ``expected``.

        Returns 1 if it slept and was woken, 0 if the word had already
        changed (no sleep).  EINTR on signal, as any interruptible sleep.
        """
        frame = yield from self.vm_handle(proc, vaddr, write=False, user=False)
        offset = vaddr & 0xFFF
        value = int.from_bytes(frame.data[offset:offset + 4], "little")
        if value != expected:
            yield kdelay(self.costs.flag_batch_test)
            return 0
        channel = self._usync_channel(proc.vm.asid, vaddr)
        if self.fail("usync.sleep"):
            raise SysError(EINTR, "injected: signal before uwait sleep")
        channel.waiters += 1
        self.stats["uwaits"] += 1
        self.pcount(proc, "uwaits")
        self.trace("uwait", proc.pid, "@%#x" % vaddr)
        ok = yield from channel.sema.p(proc, interruptible=True)
        if not ok:
            channel.waiters = max(channel.waiters - 1, 0)
            raise SysError(EINTR)
        return 1

    def sys_uwake(self, proc, vaddr: int, count: int = 1):
        """Wake up to ``count`` sleepers on the word; returns the number
        of wakeups banked (``v()`` keeps one for a racing sleeper)."""
        yield kdelay(self.costs.wakeup)
        channel = self._usync.get((proc.vm.asid, vaddr))
        if channel is None:
            return 0
        woken = min(count, channel.waiters) if channel.waiters else 0
        for _ in range(woken):
            channel.sema.v()
        channel.waiters -= woken
        self.stats["uwakes"] += woken
        if woken:
            self.pcount(proc, "uwakes", woken)
            self.trace("uwake", proc.pid, "@%#x woke=%d" % (vaddr, woken))
        return woken
