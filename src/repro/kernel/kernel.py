"""The kernel: boot, the syscall trampoline, signals, process drivers.

This class composes the mixins (fault handling, process calls, file
calls, SysV IPC, sockets, Mach-style threads) into the complete simulated
System V.3 kernel with share-group support.

Design goals carried over from the paper (section 6):

1. correct on both uniprocessors and multiprocessors — everything is
   driven by the same event engine regardless of CPU count;
2. kernel-mode synchronization works even when members are not runnable —
   shared state lives in the shared address block with its own reference
   counts, never in another process's u-area;
3. the overall kernel structure is unchanged — share groups hook the
   fork path, the fault path and the syscall entry path only;
4. no penalty for normal processes — the only added cost on the syscall
   path is the single batched ``p_flag`` test (and even that disappears
   when ``share_groups_enabled=False``, the configuration experiment E2
   compares against).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import SimulationError, SysError
from repro.fs.fsys import FileSystem
from repro.ipc.syscalls import IPCSyscalls
from repro.kernel.fault import FaultMixin
from repro.kernel.filecalls import FileSyscalls
from repro.kernel.flags import ALL_SYNC, SYNC_BIT_NAMES
from repro.kernel.proc import Proc, ProcTable
from repro.kernel.proccalls import ProcSyscalls, make_exit_status, make_signal_status
from repro.kernel.sched import make_scheduler
from repro.kernel.signals import (
    Action,
    SIG_DFL,
    SIG_IGN,
    SIGKILL,
    UNCATCHABLE,
    default_action,
)
from repro.kernel.uarea import UArea
from repro.kernel.usync import UsyncSyscalls
from repro.mem import layout
from repro.mem.addrspace import AddressSpace
from repro.mem.pregion import Growth, PROT_RW, PROT_RX
from repro.mem.region import RegionType
from repro.share import resources
from repro.sim.effects import kdelay
from repro.sync.sharedlock import SharedReadLock
from repro.sync.semaphore import Semaphore
from repro.threads.syscalls import ThreadSyscalls

#: offset of ``errno`` within the PRDA (the C library convention here)
ERRNO_OFFSET = 0

#: default image segment sizes
DEFAULT_TEXT = 64 * 1024
DEFAULT_DATA = 128 * 1024


class ProgramImage:
    """A registered executable: an entry generator plus segment sizes."""

    def __init__(
        self,
        name: str,
        func: Callable,
        text_bytes: int = DEFAULT_TEXT,
        data_bytes: int = DEFAULT_DATA,
    ):
        self.name = name
        self.func = func
        self.text_bytes = text_bytes
        self.data_bytes = data_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return "<ProgramImage %s>" % self.name


class Kernel(
    FaultMixin, ProcSyscalls, FileSyscalls, IPCSyscalls, ThreadSyscalls,
    UsyncSyscalls,
):
    """The simulated kernel."""

    def __init__(
        self,
        machine,
        share_groups_enabled: bool = True,
        batched_flag_test: bool = True,
        vm_lock_factory=SharedReadLock,
        scheduler="percpu",
    ):
        self.machine = machine
        self.engine = machine.engine
        self.costs = machine.costs
        self.share_groups_enabled = share_groups_enabled
        self.batched_flag_test = batched_flag_test
        self.vm_lock_factory = vm_lock_factory

        self.tracer = None  #: optional repro.sim.trace.Tracer
        self.profile = machine.profile  #: host self-profiler (may be NULL)
        self.kstat = machine.kstat  #: the machine's kstat counter registry
        self.inject = machine.inject  #: the machine's failpoint registry
        self.fs = FileSystem()
        self.sched = make_scheduler(scheduler, machine)
        self.sched.kernel = self
        self.proc_table = ProcTable()
        self.programs: Dict[str, ProgramImage] = {}
        self.live_procs = 0
        self.init_ipc()
        self.init_usync()
        self._make_devices()

        self.stats: Dict[str, int] = {
            key: 0
            for key in (
                "syscalls", "syscall_errors", "faults", "segv", "stack_grows",
                "forks", "sprocs", "execs", "exits", "groups_created",
                "groups_freed", "shootdowns", "signals_posted",
                "signals_delivered", "signal_deaths", "opens", "pipes",
                "mmaps", "munmaps", "bytes_read", "bytes_written",
                "thread_creates", "thread_exits", "sync_entries", "oom_kills",
                "uwaits", "uwakes", "unshares", "unshare_unwinds",
            )
        }

        for cpu in machine.cpus:
            cpu.kernel = self

    def _make_devices(self) -> None:
        """Populate /dev with the standard pseudo-devices."""
        from repro.fs.device import NullDevice, ZeroDevice
        from repro.fs.inode import InodeType

        dev_dir = self.fs.mkdir_p("/dev")
        for name, device in (("null", NullDevice()), ("zero", ZeroDevice())):
            node = self.fs.create(dev_dir, name, InodeType.CHR, 0o666)
            node.device = device

    # ------------------------------------------------------------------
    # observability

    def trace(self, kind: str, pid: int, detail: str = "", ph: str = "i",
              cpu=None) -> None:
        """Record a trace event; a no-op when no tracer is attached.

        The single hook-point helper: call sites stay one-liners and
        never test ``self.tracer`` themselves.
        """
        if self.tracer is not None:
            profile = self.profile
            if profile.enabled:
                t0 = profile.clock()
                self.tracer.record(kind, pid, detail, ph=ph, cpu=cpu)
                profile.leaf("obs.trace", t0)
            else:
                self.tracer.record(kind, pid, detail, ph=ph, cpu=cpu)

    def fail(self, site: str) -> bool:
        """Did the failpoint at ``site`` fire?  Host-side, charges nothing."""
        return self.inject.fire(site)

    def pcount(self, proc, name: str, n: int = 1) -> None:
        """Bump a per-process kstat counter (and the group's, if any)."""
        kstat = self.kstat
        if not kstat.enabled:
            return
        kstat.add("proc", proc.pid, name, n)
        if proc.shaddr is not None:
            kstat.add("group", getattr(proc.shaddr, "sgid", 0), name, n)

    # ------------------------------------------------------------------
    # programs and boot

    def register_program(
        self,
        name: str,
        func: Callable,
        text_bytes: int = DEFAULT_TEXT,
        data_bytes: int = DEFAULT_DATA,
        path: Optional[str] = None,
    ) -> ProgramImage:
        """Register an executable image; optionally bind it at ``path``."""
        image = ProgramImage(name, func, text_bytes, data_bytes)
        self.programs[name] = image
        if path is not None:
            self.fs.add_program(path, name)
        return image

    def build_image_vm(self, image: ProgramImage, stack_max: int) -> AddressSpace:
        """A fresh standalone address space for a program image."""
        vm = AddressSpace(self.machine)
        vm.stack_max_bytes = stack_max
        vm.map_segment(layout.PRDA_BASE, layout.PRDA_SIZE, RegionType.PRDA, PROT_RW)
        vm.map_segment(layout.TEXT_BASE, image.text_bytes, RegionType.TEXT, PROT_RX)
        data_ceiling = (layout.MAP_BASE - layout.DATA_BASE) >> 12
        vm.map_segment(
            layout.DATA_BASE,
            image.data_bytes,
            RegionType.DATA,
            PROT_RW,
            growth=Growth.UP,
            max_pages=data_ceiling,
        )
        vm.carve_stack(shared=False)
        return vm

    def spawn(
        self,
        func: Callable,
        arg=0,
        name: str = "init",
        uid: int = 0,
        gid: int = 0,
        image: Optional[ProgramImage] = None,
    ) -> Proc:
        """Create and start a top-level process (host-side, no parent)."""
        image = image or ProgramImage(name, func)
        uarea = UArea(self.fs.root)
        uarea.uid = uid
        uarea.gid = gid
        vm = self.build_image_vm(image, uarea.stack_max)
        proc = self._new_proc(uarea, vm, name=name)
        self._start_child(proc, func, arg)
        return proc

    def _new_proc(self, uarea: UArea, vm, name: str) -> Proc:
        pid = self.proc_table.alloc_pid()
        uarea.fdtable.inject = self.machine.inject
        proc = Proc(pid, uarea, vm, name=name)
        proc.child_wait = Semaphore(self.machine, self.sched, 0, "wait:%d" % pid)
        proc.api = self.make_api(proc)
        self.proc_table.insert(proc)
        self.live_procs += 1
        return proc

    def make_api(self, proc: Proc):
        from repro.kernel.syscalls import UserAPI

        return UserAPI(self, proc)

    def _driver(self, proc: Proc, func: Callable, arg):
        """The bottom frame of every process: run the program, then exit.

        A program's integer return value becomes its exit code.
        """

        def driver():
            body = func(proc.api, arg)
            if not hasattr(body, "send"):
                raise SimulationError(
                    "program %r is not a generator function: simulated "
                    "programs must contain a yield (e.g. 'yield from "
                    "api.getpid()'); it returned %r instead"
                    % (getattr(func, "__name__", func), body)
                )
            result = yield from body
            code = result if isinstance(result, int) else 0
            yield from self.do_exit(proc, make_exit_status(code))

        return driver()

    def _start_child(self, child: Proc, entry: Callable, arg) -> None:
        child.frames = [self._driver(child, entry, arg)]
        self.sched.wakeup(child)

    def on_proc_exit(self, proc: Proc) -> None:
        self.live_procs -= 1

    # ------------------------------------------------------------------
    # the syscall trampoline

    def syscall(self, proc: Proc, handler):
        """Generator: kernel entry, sync check, handler, signal delivery.

        Failing handlers raise :class:`SysError`; the trampoline stores
        the error number in the PRDA ``errno`` slot and returns -1,
        following the System V convention.
        """
        proc.syscalls += 1
        self.stats["syscalls"] += 1
        kstat = self.kstat
        metrics = kstat.enabled
        tracing = self.tracer is not None
        name = getattr(handler, "__name__", "?") if (metrics or tracing) else "?"
        entered = self.engine.now
        if metrics:
            kstat.add("kernel", 0, "syscalls")
            self.pcount(proc, "syscall." + name)
        if tracing:
            self.trace("syscall", proc.pid, name, ph="B")
        proc.in_kernel = True
        yield kdelay(self.costs.syscall_entry)
        yield from self.entry_checks(proc)
        if self.fail("syscall.entry"):
            # Abrupt-kill injection: the process dies at the boundary
            # before the handler starts, as a SIGKILL racing the trap
            # would have it.  deliver_pending never returns.
            self.psignal(proc, SIGKILL)
            yield from self.deliver_pending(proc)
        try:
            ret = yield from handler
        except SysError as err:
            self.seterrno(proc, err.errno)
            self.stats["syscall_errors"] += 1
            self.pcount(proc, "syscall_errors")
            ret = -1
        finally:
            proc.in_kernel = False
            if metrics:
                kstat.observe(
                    "kernel", 0, "syscall_cycles", self.engine.now - entered
                )
            self.trace("syscall", proc.pid, name, ph="E")
        yield kdelay(self.costs.syscall_exit)
        if self.fail("syscall.exit"):
            # Abrupt-kill injection at the return boundary: the handler's
            # work is complete and unwound; the pending check below
            # delivers the kill.
            self.psignal(proc, SIGKILL)
        if proc.pending:
            yield from self.deliver_pending(proc)
        return ret

    def entry_checks(self, proc: Proc):
        """Generator: the share-group sync-on-entry test (section 6.3).

        With batching, a single test of the collected ``p_flag`` bits;
        only when one is set does the synchronization routine run.  The
        unbatched ablation (experiment E11) tests each resource's bit
        separately on every entry, which is what the paper's scheme
        replaced.
        """
        if not self.share_groups_enabled:
            return
        if self.batched_flag_test:
            yield kdelay(self.costs.flag_batch_test)
            if proc.p_flag & ALL_SYNC:
                self.stats["sync_entries"] += 1
                self.pcount(proc, "sync_entries")
                yield from resources.sync_on_entry(self, proc)
        else:
            for bit in SYNC_BIT_NAMES:
                yield kdelay(self.costs.flag_single_test)
                if proc.p_flag & bit:
                    self.stats["sync_entries"] += 1
            if proc.p_flag & ALL_SYNC:
                yield from resources.sync_on_entry(self, proc)

    # ------------------------------------------------------------------
    # errno in the PRDA

    def _prda_frame(self, proc: Proc):
        for pregion in proc.vm.private:
            if pregion.rtype is RegionType.PRDA:
                try:
                    return pregion.region.ensure_page(0)
                except MemoryError:
                    # No frame for the PRDA (for real or injected):
                    # errno is best-effort, never a second failure.
                    return None
        return None

    def seterrno(self, proc: Proc, errno: int) -> None:
        """Deposit errno in the process's PRDA (paper section 5.1)."""
        frame = self._prda_frame(proc)
        if frame is not None:
            frame.data[ERRNO_OFFSET:ERRNO_OFFSET + 4] = errno.to_bytes(4, "little")

    def geterrno(self, proc: Proc) -> int:
        frame = self._prda_frame(proc)
        if frame is None:
            return 0
        return int.from_bytes(frame.data[ERRNO_OFFSET:ERRNO_OFFSET + 4], "little")

    # ------------------------------------------------------------------
    # signals

    def psignal(self, proc: Proc, sig: int) -> None:
        """Post ``sig`` to ``proc`` (kernel-internal, no permission check)."""
        if not proc.alive():
            return
        handler = proc.uarea.handler(sig)
        if handler is SIG_IGN and sig not in UNCATCHABLE:
            return
        if (
            handler is SIG_DFL
            and default_action(sig) is Action.IGNORE
            and sig not in UNCATCHABLE
        ):
            return
        proc.pending.post(sig)
        self.stats["signals_posted"] += 1
        self.pcount(proc, "signals_posted")
        self.trace("signal", proc.pid, "sig=%d posted" % sig)
        if (
            proc.state is Proc.SLEEPING
            and proc.sleep_interruptible
            and proc.sleeping_on is not None
        ):
            proc.sleeping_on.cancel(proc)

    def deliver_pending(self, proc: Proc):
        """Generator: deliver every pending signal (runs in proc context).

        Delivery is not reentered while a handler runs (``delivering``
        guard in :meth:`user_boundary`): new signals stay pending until
        the handler returns, the classic return-to-user rule.  SIGKILL
        bypasses the guard.
        """
        proc.delivering += 1
        try:
            yield from self._deliver_pending_body(proc)
        finally:
            proc.delivering -= 1

    def _deliver_pending_body(self, proc: Proc):
        while proc.pending:
            sig = proc.pending.take()
            if sig == 0:
                return
            handler = proc.uarea.handler(sig)
            if sig in UNCATCHABLE or handler is SIG_DFL:
                if default_action(sig) is Action.IGNORE:
                    continue
                self.stats["signal_deaths"] += 1
                yield from self.do_exit(proc, make_signal_status(sig))
                raise AssertionError("unreachable")  # pragma: no cover
            if handler is SIG_IGN:
                continue
            self.stats["signals_delivered"] += 1
            yield kdelay(self.costs.signal_deliver)
            yield from handler(proc.api, sig)

    def user_boundary(self, proc: Proc):
        """CPU hook: a frame to push at a user-mode boundary, or None."""
        if proc.in_kernel:
            return None
        if proc.block_count < 0:
            return self.blocked_frame(proc)
        if not proc.pending:
            return None
        from repro.kernel.signals import SIGKILL

        if proc.delivering and SIGKILL not in proc.pending:
            # a handler is already running: let it finish first
            return None
        return self.deliver_pending(proc)

    def exit_generator(self, proc: Proc, code: int):
        """CPU hook: implicit exit when a driver falls off the end."""
        return self.do_exit(proc, make_exit_status(code))

    # ------------------------------------------------------------------
    # diagnostics

    def check_quiescent(self) -> None:
        """Raise if live processes remain but nothing can ever run."""
        stuck = [
            proc for proc in self.proc_table.all_procs()
            if proc.alive() and proc.state is not Proc.ZOMBIE
        ]
        if stuck and self.engine.idle():
            raise SimulationError(
                "deadlock: %s are blocked with an empty event queue"
                % [(proc.pid, proc.name, proc.state.value) for proc in stuck]
            )
