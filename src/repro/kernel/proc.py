"""The proc structure and process table.

A share group member carries a pointer to the group's shared address
block plus its kernel-side share mask (``p_shmask``) and the sync bits in
``p_flag`` (see :mod:`repro.kernel.flags`).  Everything else is the
classic System V proc entry, trimmed to what the simulation exercises.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.kernel.signals import PendingSet
from repro.kernel.uarea import UArea


class ProcState(enum.Enum):
    EMBRYO = "embryo"  #: being created
    RUNNABLE = "runnable"  #: on a run queue
    RUNNING = "running"  #: on a CPU
    SLEEPING = "sleeping"  #: blocked on a semaphore / wait channel
    ZOMBIE = "zombie"  #: exited, awaiting wait()


#: default scheduling priority (lower number = runs first)
PRI_USER = 20


class Proc:
    """One process.

    Slotted: the proc entry is touched on every dispatch, boundary and
    syscall, so attribute access goes through fixed slots rather than a
    per-instance dict.  ``api`` is assigned by ``Kernel._new_proc``.
    """

    __slots__ = (
        "pid", "name", "state", "pri",
        "parent", "children", "exit_status",
        "uarea", "vm",
        "shaddr", "p_shmask", "p_flag",
        "task",
        "pending", "delivering",
        "frames", "saved_resume", "resume_value", "need_resched",
        "quantum_left", "cpu", "last_cpu", "runq_since", "in_kernel",
        "alarm_event",
        "block_count", "block_sema",
        "sleeping_on", "sleep_interruptible", "child_wait",
        "syscalls", "faults",
        "api",
    )

    # Exposed so synchronization code can set states without importing us.
    RUNNABLE = ProcState.RUNNABLE
    RUNNING = ProcState.RUNNING
    SLEEPING = ProcState.SLEEPING
    ZOMBIE = ProcState.ZOMBIE

    def __init__(self, pid: int, uarea: UArea, vm, name: str = ""):
        self.pid = pid
        self.name = name or ("proc%d" % pid)
        self.state = ProcState.EMBRYO
        self.pri = PRI_USER

        # family
        self.parent: Optional["Proc"] = None
        self.children: List["Proc"] = []
        self.exit_status = 0

        # resources
        self.uarea = uarea
        self.vm = vm

        # share group (the paper's additions to the proc entry)
        self.shaddr = None  #: SharedAddressBlock or None
        self.p_shmask = 0  #: kernel copy of the share mask
        self.p_flag = 0  #: resource sync bits

        # Mach-style baseline: the task this proc is a thread of, if any
        self.task = None

        # signals
        self.pending = PendingSet()
        self.delivering = 0  #: depth of in-progress handler delivery

        # execution state driven by the CPU interpreter
        self.frames: List = []  #: generator stack; bottom is the driver
        self.saved_resume: List = []  #: resume values saved per pushed frame
        self.resume_value = None
        self.need_resched = False
        self.quantum_left = 0
        self.cpu = None
        self.last_cpu: Optional[int] = None  #: scheduler affinity hint
        self.runq_since: Optional[int] = None  #: cycle it was last enqueued
        self.in_kernel = False

        # pending alarm (engine event), cancelled at exit
        self.alarm_event = None

        # blockproc/unblockproc state (section 8 extension)
        self.block_count = 0
        self.block_sema = None

        # sleep bookkeeping
        self.sleeping_on = None
        self.sleep_interruptible = False
        self.child_wait = None  #: Semaphore armed by the kernel for wait()

        # statistics
        self.syscalls = 0
        self.faults = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Proc %d %s %s>" % (self.pid, self.name, self.state.value)

    # ------------------------------------------------------------------

    def asid(self) -> int:
        return self.vm.asid

    @property
    def in_share_group(self) -> bool:
        return self.shaddr is not None

    def shares(self, mask_bit: int) -> bool:
        """Is this process sharing the resource named by ``mask_bit``?"""
        return self.shaddr is not None and bool(self.p_shmask & mask_bit)

    def alive(self) -> bool:
        return self.state not in (ProcState.ZOMBIE,)


class ProcTable:
    """pid allocation and lookup."""

    def __init__(self, max_procs: int = 1000):
        self.max_procs = max_procs
        self._procs: Dict[int, Proc] = {}
        self._next_pid = 0
        self.created = 0

    def alloc_pid(self) -> int:
        if len(self._procs) >= self.max_procs:
            raise SimulationError("process table full")
        self._next_pid += 1
        return self._next_pid

    def insert(self, proc: Proc) -> None:
        if proc.pid in self._procs:
            raise SimulationError("duplicate pid %d" % proc.pid)
        self._procs[proc.pid] = proc
        self.created += 1

    def remove(self, proc: Proc) -> None:
        if self._procs.pop(proc.pid, None) is None:
            raise SimulationError("removing unknown pid %d" % proc.pid)

    def get(self, pid: int) -> Optional[Proc]:
        return self._procs.get(pid)

    def all_procs(self) -> List[Proc]:
        return list(self._procs.values())

    def __len__(self) -> int:
        return len(self._procs)

    def __contains__(self, pid: int) -> bool:
        return pid in self._procs
