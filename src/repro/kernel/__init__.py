"""The simulated System V.3 kernel with share-group support."""

from repro.kernel.kernel import ERRNO_OFFSET, Kernel, ProgramImage
from repro.kernel.proc import PRI_USER, Proc, ProcState, ProcTable
from repro.kernel.proccalls import (
    make_exit_status,
    make_signal_status,
    status_code,
    status_exited,
    status_signal,
)
from repro.kernel.sched import GlobalScheduler, Scheduler, make_scheduler
from repro.kernel.syscalls import UserAPI
from repro.kernel.uarea import UArea

__all__ = [
    "ERRNO_OFFSET",
    "GlobalScheduler",
    "Kernel",
    "PRI_USER",
    "Proc",
    "ProcState",
    "ProcTable",
    "ProgramImage",
    "Scheduler",
    "UArea",
    "UserAPI",
    "make_exit_status",
    "make_scheduler",
    "make_signal_status",
    "status_code",
    "status_exited",
    "status_signal",
]
