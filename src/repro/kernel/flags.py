"""Process flag bits (the paper's ``p_flag`` word).

When a share group member modifies a shared non-VM resource it sets one
of these bits in every *other* member's ``p_flag``.  At kernel entry the
collection of bits is checked *in a single test*; only when some bit is
set does the (slower) resynchronization routine run.  The paper credits
this batching with lowering system call overhead for most calls — the
claim experiment E11 reproduces.
"""

from __future__ import annotations

#: re-sync open file descriptors from s_ofile
SFDSYNC = 0x0001
#: re-sync current/root directory from s_cdir/s_rdir
SDIRSYNC = 0x0002
#: re-sync effective uid/gid from s_uid/s_gid
SIDSYNC = 0x0004
#: re-sync file creation mask from s_cmask
SUMASKSYNC = 0x0008
#: re-sync ulimit from s_limit
SULIMITSYNC = 0x0010

#: every resource-sync bit (the single batched test mask)
ALL_SYNC = SFDSYNC | SDIRSYNC | SIDSYNC | SUMASKSYNC | SULIMITSYNC

#: human-readable names for diagnostics
SYNC_BIT_NAMES = {
    SFDSYNC: "fds",
    SDIRSYNC: "dir",
    SIDSYNC: "id",
    SUMASKSYNC: "umask",
    SULIMITSYNC: "ulimit",
}


def sync_bits(flag_word: int):
    """Iterate the individual sync bits set in a flag word."""
    for bit in SYNC_BIT_NAMES:
        if flag_word & bit:
            yield bit
