"""The multiprocessor scheduler.

A global priority run queue feeds idle CPUs.  Preemption is requested by
setting ``need_resched`` on the running process; the CPU honors it at its
next user-mode boundary (kernel code is never preempted on its own CPU,
the System V rule the paper's locking design assumes).

Gang mode — the paper's section 8 suggestion that "at least two of the
processes in the share group must run in parallel, or the group should
not be allowed to execute at all" — is implemented as an extension: a
share group marked gang-scheduled is only dispatched when enough CPUs are
idle to run *all* of its runnable members side by side, and they are then
placed as a unit.  Experiment E12 measures what this buys spinlock-heavy
workloads.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError
from repro.kernel.proc import Proc, ProcState


class Scheduler:
    """Global run queue plus idle-CPU bookkeeping."""

    def __init__(self, machine):
        self.machine = machine
        self.kernel = None  #: set by the kernel at boot (trace hooks)
        self._queue: List[Proc] = []  #: FIFO within priority
        self._idle = list(machine.cpus)  #: CPUs with nothing to run
        self.wakeups = 0
        self.gang_dispatches = 0
        self.gang_holds = 0
        for cpu in machine.cpus:
            cpu.dispatcher = self

    # ------------------------------------------------------------------
    # queue maintenance

    def wakeup(self, proc: Proc) -> None:
        """Make ``proc`` runnable and get it a CPU if one is idle."""
        if proc.state in (ProcState.RUNNING, ProcState.RUNNABLE):
            return
        if proc.state is ProcState.ZOMBIE:
            raise SimulationError("wakeup of zombie %r" % proc)
        proc.state = ProcState.RUNNABLE
        self._queue.append(proc)
        self.wakeups += 1
        self.machine.kstat.add("kernel", 0, "wakeups")
        if self.kernel is not None:
            self.kernel.trace("wakeup", proc.pid)
        self._dispatch_idle()
        if proc.state is ProcState.RUNNABLE:
            self._request_preemption(proc)

    def requeue(self, proc: Proc) -> None:
        """A preempted or yielding process goes back to the queue tail."""
        proc.state = ProcState.RUNNABLE
        self._queue.append(proc)

    def cpu_idle(self, cpu) -> None:
        """``cpu`` has nothing to run; find it work or park it."""
        if cpu.current is not None:
            raise SimulationError("cpu_idle on busy CPU%d" % cpu.idx)
        if cpu not in self._idle:
            self._idle.append(cpu)
        self._dispatch_idle()

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch_idle(self) -> None:
        """Fill idle CPUs from the run queue until no eligible work remains."""
        while self._idle:
            chosen = self._pick()
            if chosen is None:
                return
            proc, companions = chosen
            self._place(proc)
            for member in companions:
                self._place(member)

    def _place(self, proc: Proc) -> None:
        cpu = self._idle.pop(0)
        self._queue.remove(proc)
        proc.state = ProcState.RUNNING
        cpu.assign(proc)

    def _pick(self) -> Optional[tuple]:
        """Best proc to dispatch, plus gang companions to co-dispatch.

        A gang member at the head of the queue *reserves* idle CPUs: if
        not enough processors are free to co-schedule the whole gang, we
        return None (leaving CPUs idle to accumulate) and ask running
        non-members to yield, rather than handing the CPUs to whoever is
        next.  Deliberately non-work-conserving — that is the price of
        the section 8 guarantee that the group runs in parallel or not
        at all.
        """
        best: Optional[Proc] = None
        for proc in self._queue:
            if best is None or proc.pri < best.pri:
                best = proc
        if best is None:
            return None
        if self._is_gang(best):
            if self._gang_blocked(best):
                self._evict_for_gang(best)
                return None
            return best, self._gang_companions(best)
        return best, []

    def _evict_for_gang(self, proc: Proc) -> None:
        """Ask CPUs running non-members to free up for a waiting gang."""
        members = set(proc.shaddr.members())
        for cpu in self.machine.cpus:
            running = cpu.current
            if running is not None and running not in members:
                running.need_resched = True

    # ------------------------------------------------------------------
    # gang mode (extension)

    @staticmethod
    def _is_gang(proc: Proc) -> bool:
        return proc.shaddr is not None and getattr(proc.shaddr, "gang", False)

    def _gang_runnable(self, proc: Proc) -> List[Proc]:
        return [
            member for member in proc.shaddr.members()
            if member.state is ProcState.RUNNABLE
        ]

    def _gang_need(self, proc: Proc) -> int:
        """CPUs required to co-dispatch the gang (capped at the machine)."""
        return min(len(self._gang_runnable(proc)), self.machine.ncpus)

    def _gang_blocked(self, proc: Proc) -> bool:
        """May this gang member not be dispatched yet?"""
        if not self._is_gang(proc):
            return False
        if self._gang_need(proc) <= len(self._idle):
            return False
        self.gang_holds += 1
        return True

    def _gang_companions(self, proc: Proc) -> List[Proc]:
        """Other members to place on idle CPUs alongside ``proc``."""
        if not self._is_gang(proc):
            return []
        take = self._gang_need(proc) - 1
        companions = [
            member for member in self._gang_runnable(proc) if member is not proc
        ][:take]
        self.gang_dispatches += 1
        return companions

    # ------------------------------------------------------------------
    # preemption

    def _request_preemption(self, incoming: Proc) -> None:
        """Ask the worst-priority running CPU to yield to ``incoming``."""
        victim_cpu = None
        for cpu in self.machine.cpus:
            running = cpu.current
            if running is None:
                continue
            if running.pri <= incoming.pri:
                continue
            if victim_cpu is None or running.pri > victim_cpu.current.pri:
                victim_cpu = cpu
        if victim_cpu is not None:
            victim_cpu.current.need_resched = True

    def should_preempt(self, cpu, proc: Proc) -> bool:
        """Quantum expired on ``proc``: is someone of equal/better priority waiting?"""
        for queued in self._queue:
            if queued.pri <= proc.pri and not self._gang_blocked(queued):
                return True
        return False

    # ------------------------------------------------------------------
    # introspection

    def has_runnable(self) -> bool:
        """Is anybody waiting for a CPU?  (sched_yield fast-path check)"""
        return bool(self._queue)

    @property
    def runnable_count(self) -> int:
        return len(self._queue)

    @property
    def idle_count(self) -> int:
        return len(self._idle)
