"""The multiprocessor scheduler: per-CPU run queues with affinity.

Each CPU owns a priority run queue.  ``wakeup`` enqueues a process on
the CPU it last ran on when that queue is not noticeably deeper than its
peers (warm cache, and — for share-group members, which all run under
one ASID — a warm TLB); otherwise it falls back to the least-loaded
queue.  An idle CPU drains its own queue first and *steals* the best
runnable process from a peer when its queue is empty, so no CPU idles
while work waits.  Dispatch and preemption decisions peek only at the
queue heads (O(ncpus)), never at every runnable process — the global
run-queue scan this design replaced is kept as :class:`GlobalScheduler`
for the E15 ablation.

Preemption is requested by setting ``need_resched`` on the running
process; the CPU honors it at its next user-mode boundary (kernel code
is never preempted on its own CPU, the System V rule the paper's locking
design assumes).

Gang mode — the paper's section 8 suggestion that "at least two of the
processes in the share group must run in parallel, or the group should
not be allowed to execute at all" — is implemented as an extension: a
share group marked gang-scheduled is only dispatched when enough CPUs
are idle to run *all* of its runnable members side by side, and they are
then placed as a unit.  A gang member at the head of the combined queues
*reserves* idle CPUs: until enough processors are free the scheduler
dispatches nothing and asks running non-members to yield.  Experiment
E12 measures what this buys spinlock-heavy workloads.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.kernel.proc import Proc, ProcState

#: a waking process stays on its last CPU's queue as long as that queue
#: is at most this much deeper than the shallowest queue
AFFINITY_SLACK = 1


class RunQueue:
    """One CPU's priority run queue.

    A binary heap of ``[pri, seq, proc, alive]`` entries with lazy
    deletion: ``remove`` (work stealing, gang co-dispatch, priority
    changes) marks the entry dead and the next ``peek``/``pop`` prunes
    it.  ``seq`` is the scheduler-wide enqueue counter, so FIFO order
    within a priority is preserved across queues and runs are
    deterministic.
    """

    __slots__ = ("idx", "_heap", "_entries")

    def __init__(self, idx: int):
        self.idx = idx
        self._heap: List[list] = []
        self._entries: Dict[int, list] = {}  #: pid -> live heap entry

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, proc: Proc, seq: int) -> None:
        if proc.pid in self._entries:
            raise SimulationError(
                "pid %d enqueued twice on runq%d" % (proc.pid, self.idx)
            )
        entry = [proc.pri, seq, proc, True]
        self._entries[proc.pid] = entry
        heapq.heappush(self._heap, entry)

    def _prune(self) -> None:
        while self._heap and not self._heap[0][3]:
            heapq.heappop(self._heap)

    def peek(self) -> Optional[Tuple[int, int, Proc]]:
        """``(pri, seq, proc)`` of the best entry, or None when empty."""
        # _prune inlined: peek is called once per run queue per dispatch
        # decision, so the extra call frame showed up in profiles.
        heap = self._heap
        while heap and not heap[0][3]:
            heapq.heappop(heap)
        if not heap:
            return None
        entry = heap[0]
        return entry[0], entry[1], entry[2]

    def remove(self, proc: Proc) -> bool:
        entry = self._entries.pop(proc.pid, None)
        if entry is None:
            return False
        entry[3] = False
        return True


class Scheduler:
    """Per-CPU run queues, cache/TLB affinity, work stealing, gang mode."""

    #: name under which make_scheduler finds this class
    kind = "percpu"

    def __init__(self, machine):
        self.machine = machine
        self.kernel = None  #: set by the kernel at boot (trace hooks)
        self._queues = [RunQueue(cpu.idx) for cpu in machine.cpus]
        self._where: Dict[int, RunQueue] = {}  #: pid -> queue holding it
        self._idle = list(machine.cpus)  #: CPUs with nothing to run
        self._seq = 0  #: global enqueue counter (FIFO within priority)
        self.wakeups = 0
        self.gang_dispatches = 0
        self.gang_holds = 0
        self.affinity_hits = 0  #: dispatched on last_cpu
        self.migrations = 0  #: dispatched on a different CPU
        self.steals = 0  #: taken from another CPU's queue
        self.picks = 0  #: dispatch decisions taken
        self.scan_steps = 0  #: queue entries examined making them
        for cpu in machine.cpus:
            cpu.dispatcher = self

    # ------------------------------------------------------------------
    # queue maintenance

    def wakeup(self, proc: Proc) -> None:
        """Make ``proc`` runnable and get it a CPU if one is idle."""
        if proc.state in (ProcState.RUNNING, ProcState.RUNNABLE):
            return
        if proc.state is ProcState.ZOMBIE:
            raise SimulationError("wakeup of zombie %r" % proc)
        proc.state = ProcState.RUNNABLE
        self._enqueue(proc)
        self.wakeups += 1
        self.machine.kstat.add("kernel", 0, "wakeups")
        if self.kernel is not None:
            self.kernel.trace("wakeup", proc.pid)
        self._dispatch_idle()
        if proc.state is ProcState.RUNNABLE:
            self._request_preemption(proc)

    def requeue(self, proc: Proc) -> None:
        """A preempted or yielding process goes back to a queue tail.

        ``_enqueue`` prefers the queue of the CPU it just ran on, so a
        preempted process contends for its own — still warm — processor
        first.
        """
        proc.state = ProcState.RUNNABLE
        self._enqueue(proc)

    def _enqueue(self, proc: Proc) -> None:
        engine = self.machine.engine
        proc.runq_since = engine.now
        if engine.perturbs("enqueue"):
            # Schedule exploration: any queue within the affinity slack
            # of the shallowest is a legal home — let the seeded RNG
            # pick among them instead of always preferring last_cpu.
            shallowest = min(len(q) for q in self._queues)
            candidates = [
                q for q in self._queues
                if len(q) <= shallowest + AFFINITY_SLACK
            ]
            queue = engine.rng.choice(candidates)
            self._seq += 1
            queue.push(proc, self._seq)
            self._where[proc.pid] = queue
            self.machine.kstat.set("cpu", queue.idx, "runq_depth", len(queue))
            return
        home = proc.last_cpu
        queue = None
        if home is not None:
            shallowest = min(len(q) for q in self._queues)
            if len(self._queues[home]) <= shallowest + AFFINITY_SLACK:
                queue = self._queues[home]
        elif self._idle:
            # never-run process: head straight for a queue that will
            # drain immediately
            queue = self._queues[self._idle[0].idx]
        if queue is None:
            queue = min(self._queues, key=len)
        self._seq += 1
        queue.push(proc, self._seq)
        self._where[proc.pid] = queue
        self.machine.kstat.set("cpu", queue.idx, "runq_depth", len(queue))

    def reprioritize(self, proc: Proc) -> None:
        """``proc.pri`` changed; re-key its queue entry if it is waiting."""
        queue = self._where.pop(proc.pid, None)
        if queue is None:
            return
        queue.remove(proc)
        self._seq += 1
        queue.push(proc, self._seq)
        self._where[proc.pid] = queue

    def cpu_idle(self, cpu) -> None:
        """``cpu`` has nothing to run; find it work or park it."""
        if cpu.current is not None:
            raise SimulationError("cpu_idle on busy CPU%d" % cpu.idx)
        if cpu not in self._idle:
            self._idle.append(cpu)
        self._dispatch_idle()

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch_idle(self) -> None:
        """Fill idle CPUs until no eligible work remains."""
        while self._idle:
            if not self._dispatch_one():
                return

    def _dispatch_one(self) -> bool:
        """One dispatch decision; False when nothing may be placed.

        The best candidate is found by peeking the head of every queue —
        O(ncpus), independent of how many processes are runnable.  A
        gang member at the head reserves idle CPUs: if not enough
        processors are free to co-schedule the whole gang we dispatch
        nothing (leaving CPUs idle to accumulate) and ask running
        non-members to yield.  Deliberately non-work-conserving — that
        is the price of the section 8 guarantee that the group runs in
        parallel or not at all.

        Priorities are strict, but *within* the best priority class an
        idle CPU takes the head of its own queue before the globally
        oldest one — that slight FIFO bend is what makes affinity pay:
        a requeued process is usually redispatched on the CPU whose
        cache and TLB it just warmed instead of round-robining across
        the machine.
        """
        chosen = self._select()
        if chosen is None:
            return False
        if self._is_gang(chosen):
            if self._gang_need(chosen) > len(self._idle):
                self.gang_holds += 1
                self._evict_for_gang(chosen)
                return False
            self.gang_dispatches += 1
            self._place(chosen)
            for member in self._gang_companions(chosen):
                self._place(member)
            return True
        self._place(self._prefer_local(chosen))
        return True

    def _prefer_local(self, best: Proc) -> Proc:
        """A same-priority head on an idle CPU's own queue, if any.

        Gang heads are never chosen here — gangs dispatch only through
        the global-best path so the reservation rule stays intact.
        """
        for cpu in self._idle:
            head = self._queues[cpu.idx].peek()
            self.scan_steps += 1
            if head is None:
                continue
            pri, _seq, proc = head
            if pri == best.pri and not self._is_gang(proc):
                return proc
        return best

    def _select(self) -> Optional[Proc]:
        """Globally-best queued process, by (priority, enqueue order).

        Under seeded perturbation, FIFO order *within* the best priority
        class is not load-bearing: the RNG picks any best-priority head
        (a legal steal tie-break), which is how the schedule explorer
        varies who gets stolen first.
        """
        self.picks += 1
        best = None
        best_key = None
        for queue in self._queues:
            self.scan_steps += 1
            head = queue.peek()
            if head is None:
                continue
            pri, seq, proc = head
            if best is None or (pri, seq) < best_key:
                best, best_key = proc, (pri, seq)
        engine = self.machine.engine
        if best is not None and engine.perturbs("select"):
            heads = [
                head[2] for head in (queue.peek() for queue in self._queues)
                if head is not None and head[0] == best.pri
            ]
            if len(heads) > 1:
                return engine.rng.choice(heads)
        return best

    def _place(self, proc: Proc) -> None:
        queue = self._where.pop(proc.pid)
        queue.remove(proc)
        kstat = self.machine.kstat
        kstat.set("cpu", queue.idx, "runq_depth", len(queue))
        cpu = self._choose_cpu(proc, queue)
        self._idle.remove(cpu)
        proc.state = ProcState.RUNNING
        if proc.last_cpu is not None:
            if cpu.idx == proc.last_cpu:
                self.affinity_hits += 1
                kstat.add("kernel", 0, "sched_affinity_hits")
            else:
                self.migrations += 1
                kstat.add("kernel", 0, "sched_migrations")
        if cpu.idx != queue.idx:
            self.steals += 1
            kstat.add("kernel", 0, "sched_steals")
            kstat.add("cpu", cpu.idx, "runq_steals")
        cpu.assign(proc)

    def _choose_cpu(self, proc: Proc, queue: RunQueue):
        """Best idle CPU for ``proc``: its queue's owner, then last_cpu,
        then whichever went idle first.  Under seeded perturbation any
        idle CPU is a legal placement (an affinity tie-break)."""
        engine = self.machine.engine
        if len(self._idle) > 1 and engine.perturbs("place"):
            return engine.rng.choice(self._idle)
        for cpu in self._idle:
            if cpu.idx == queue.idx:
                return cpu
        if proc.last_cpu is not None and proc.last_cpu != queue.idx:
            for cpu in self._idle:
                if cpu.idx == proc.last_cpu:
                    return cpu
        return self._idle[0]

    def _evict_for_gang(self, proc: Proc) -> None:
        """Ask CPUs running non-members to free up for a waiting gang."""
        members = set(proc.shaddr.members())
        for cpu in self.machine.cpus:
            running = cpu.current
            if running is not None and running not in members:
                running.need_resched = True

    # ------------------------------------------------------------------
    # gang mode (extension)

    @staticmethod
    def _is_gang(proc: Proc) -> bool:
        return proc.shaddr is not None and getattr(proc.shaddr, "gang", False)

    def _gang_runnable(self, proc: Proc) -> List[Proc]:
        return [
            member for member in proc.shaddr.members()
            if member.state is ProcState.RUNNABLE
        ]

    def _gang_need(self, proc: Proc) -> int:
        """CPUs required to co-dispatch the gang (capped at the machine)."""
        return min(len(self._gang_runnable(proc)), self.machine.ncpus)

    def _gang_blocked(self, proc: Proc) -> bool:
        """May this gang member not be dispatched yet?"""
        if not self._is_gang(proc):
            return False
        return self._gang_need(proc) > len(self._idle)

    def _gang_companions(self, proc: Proc) -> List[Proc]:
        """Other members to place on idle CPUs alongside ``proc``."""
        take = self._gang_need(proc) - 1
        return [
            member for member in self._gang_runnable(proc) if member is not proc
        ][:take]

    # ------------------------------------------------------------------
    # preemption

    def _request_preemption(self, incoming: Proc) -> None:
        """Ask the worst-priority running CPU to yield to ``incoming``."""
        victim_cpu = None
        for cpu in self.machine.cpus:
            running = cpu.current
            if running is None:
                continue
            if running.pri <= incoming.pri:
                continue
            if victim_cpu is None or running.pri > victim_cpu.current.pri:
                victim_cpu = cpu
        if victim_cpu is not None:
            victim_cpu.current.need_resched = True

    def should_preempt(self, cpu, proc: Proc) -> bool:
        """Quantum expired on ``proc``: is someone of equal/better
        priority waiting on this CPU's own queue?

        Only the local head is examined — O(1), where the global run
        queue scanned every runnable process.  Cross-CPU pressure is
        handled at wakeup time (``_request_preemption``) and by idle
        CPUs stealing, so no remote scan is needed here.
        """
        self.scan_steps += 1
        head = self._queues[cpu.idx].peek()
        if head is None:
            return False
        pri, _seq, candidate = head
        if self._gang_blocked(candidate):
            return False
        return pri <= proc.pri

    # ------------------------------------------------------------------
    # introspection

    def has_runnable(self) -> bool:
        """Is anybody waiting for a CPU?  (sched_yield fast-path check)"""
        return bool(self._where)

    @property
    def runnable_count(self) -> int:
        return len(self._where)

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    def queue_depths(self) -> List[int]:
        """Current depth of every CPU's run queue (introspection)."""
        return [len(queue) for queue in self._queues]


class GlobalScheduler:
    """The pre-E15 scheduler: one global run queue feeding idle CPUs.

    Kept as the ablation baseline for experiment E15: ``_pick`` scans
    every runnable process per dispatch and ``should_preempt`` re-scans
    the whole queue at every quantum expiry, the O(n) hot path the
    per-CPU scheduler removes.  Select it with
    ``System(scheduler="global")``.
    """

    kind = "global"

    def __init__(self, machine):
        self.machine = machine
        self.kernel = None  #: set by the kernel at boot (trace hooks)
        self._queue: List[Proc] = []  #: FIFO within priority
        self._idle = list(machine.cpus)  #: CPUs with nothing to run
        self.wakeups = 0
        self.gang_dispatches = 0
        self.gang_holds = 0
        self.affinity_hits = 0  #: always 0: placement ignores last_cpu
        self.migrations = 0
        self.steals = 0
        self.picks = 0  #: dispatch decisions taken
        self.scan_steps = 0  #: queue entries examined making them
        for cpu in machine.cpus:
            cpu.dispatcher = self

    # ------------------------------------------------------------------
    # queue maintenance

    def wakeup(self, proc: Proc) -> None:
        """Make ``proc`` runnable and get it a CPU if one is idle."""
        if proc.state in (ProcState.RUNNING, ProcState.RUNNABLE):
            return
        if proc.state is ProcState.ZOMBIE:
            raise SimulationError("wakeup of zombie %r" % proc)
        proc.state = ProcState.RUNNABLE
        proc.runq_since = self.machine.engine.now
        self._queue.append(proc)
        self.wakeups += 1
        self.machine.kstat.add("kernel", 0, "wakeups")
        if self.kernel is not None:
            self.kernel.trace("wakeup", proc.pid)
        self._dispatch_idle()
        if proc.state is ProcState.RUNNABLE:
            self._request_preemption(proc)

    def requeue(self, proc: Proc) -> None:
        """A preempted or yielding process goes back to the queue tail."""
        proc.state = ProcState.RUNNABLE
        proc.runq_since = self.machine.engine.now
        self._queue.append(proc)

    def reprioritize(self, proc: Proc) -> None:
        """No-op: ``_pick`` reads priorities live off the global queue."""

    def cpu_idle(self, cpu) -> None:
        """``cpu`` has nothing to run; find it work or park it."""
        if cpu.current is not None:
            raise SimulationError("cpu_idle on busy CPU%d" % cpu.idx)
        if cpu not in self._idle:
            self._idle.append(cpu)
        self._dispatch_idle()

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch_idle(self) -> None:
        """Fill idle CPUs from the run queue until no eligible work remains."""
        while self._idle:
            chosen = self._pick()
            if chosen is None:
                return
            proc, companions = chosen
            self._place(proc)
            for member in companions:
                self._place(member)

    def _place(self, proc: Proc) -> None:
        cpu = self._idle.pop(0)
        self._queue.remove(proc)
        proc.state = ProcState.RUNNING
        cpu.assign(proc)

    def _pick(self) -> Optional[tuple]:
        """Best proc to dispatch, plus gang companions to co-dispatch.

        A gang member at the head of the queue *reserves* idle CPUs: if
        not enough processors are free to co-schedule the whole gang, we
        return None (leaving CPUs idle to accumulate) and ask running
        non-members to yield, rather than handing the CPUs to whoever is
        next.  Deliberately non-work-conserving — that is the price of
        the section 8 guarantee that the group runs in parallel or not
        at all.
        """
        self.picks += 1
        self.scan_steps += len(self._queue)
        best: Optional[Proc] = None
        for proc in self._queue:
            if best is None or proc.pri < best.pri:
                best = proc
        if best is None:
            return None
        if self._is_gang(best):
            if self._gang_blocked(best):
                self.gang_holds += 1
                self._evict_for_gang(best)
                return None
            self.gang_dispatches += 1
            return best, self._gang_companions(best)
        return best, []

    def _evict_for_gang(self, proc: Proc) -> None:
        """Ask CPUs running non-members to free up for a waiting gang."""
        members = set(proc.shaddr.members())
        for cpu in self.machine.cpus:
            running = cpu.current
            if running is not None and running not in members:
                running.need_resched = True

    # ------------------------------------------------------------------
    # gang mode (extension)

    _is_gang = staticmethod(Scheduler._is_gang)
    _gang_runnable = Scheduler._gang_runnable
    _gang_need = Scheduler._gang_need
    _gang_blocked = Scheduler._gang_blocked

    def _gang_companions(self, proc: Proc) -> List[Proc]:
        """Other members to place on idle CPUs alongside ``proc``."""
        take = self._gang_need(proc) - 1
        return [
            member for member in self._gang_runnable(proc) if member is not proc
        ][:take]

    # ------------------------------------------------------------------
    # preemption

    _request_preemption = Scheduler._request_preemption

    def should_preempt(self, cpu, proc: Proc) -> bool:
        """Quantum expired on ``proc``: is someone of equal/better priority waiting?"""
        for steps, queued in enumerate(self._queue, start=1):
            if queued.pri <= proc.pri and not self._gang_blocked(queued):
                self.scan_steps += steps
                return True
        self.scan_steps += len(self._queue)
        return False

    # ------------------------------------------------------------------
    # introspection

    def has_runnable(self) -> bool:
        """Is anybody waiting for a CPU?  (sched_yield fast-path check)"""
        return bool(self._queue)

    @property
    def runnable_count(self) -> int:
        return len(self._queue)

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    def queue_depths(self) -> List[int]:
        """Global queue: all waiting work reported on one depth."""
        return [len(self._queue)] + [0] * (self.machine.ncpus - 1)


#: selectable scheduler implementations (System(scheduler=...))
SCHEDULERS = {cls.kind: cls for cls in (Scheduler, GlobalScheduler)}


def make_scheduler(kind, machine):
    """Build the scheduler named ``kind`` (or call a custom factory)."""
    if callable(kind):
        return kind(machine)
    try:
        cls = SCHEDULERS[kind]
    except KeyError:
        raise ValueError(
            "unknown scheduler %r (have: %s)" % (kind, ", ".join(sorted(SCHEDULERS)))
        )
    return cls(machine)
