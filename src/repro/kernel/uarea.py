"""The user area: per-process kernel state.

In System V.3 the u-area is swappable memory addressable only while its
process runs — which is exactly why the paper keeps an *extra* copy of
every shared resource in the shared address block: another member cannot
reach this structure directly, so it re-syncs its own u-area from the
shaddr copy at kernel entry (section 6.3).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fs.fdtable import FDTable
from repro.fs.inode import Inode
from repro.fs.fsys import Credentials
from repro.kernel.signals import SIG_DFL
from repro.mem import layout

#: default maximum file write offset (the classic ulimit, in bytes)
DEFAULT_ULIMIT = 1 << 30

#: default file-creation mask
DEFAULT_UMASK = 0o022


class UArea:
    """Everything the kernel keeps per process outside the proc entry."""

    def __init__(self, cdir: Inode, rdir: Optional[Inode] = None):
        self.fdtable = FDTable()
        self.cdir = cdir.hold()
        self.rdir = rdir.hold() if rdir is not None else None
        self.cmask = DEFAULT_UMASK
        self.ulimit = DEFAULT_ULIMIT
        self.uid = 0
        self.gid = 0
        self.handlers: Dict[int, object] = {}  #: sig -> SIG_DFL/SIG_IGN/callable
        self.stack_max = layout.DEFAULT_STACK_MAX  #: prctl PR_SETSTACKSIZE value

    # ------------------------------------------------------------------
    # directories

    def set_cdir(self, inode: Inode) -> None:
        inode.hold()
        self.cdir.release()
        self.cdir = inode

    def set_rdir(self, inode: Optional[Inode]) -> None:
        if inode is not None:
            inode.hold()
        if self.rdir is not None:
            self.rdir.release()
        self.rdir = inode

    # ------------------------------------------------------------------
    # identity

    def cred(self) -> Credentials:
        return Credentials(self.uid, self.gid)

    # ------------------------------------------------------------------
    # signal handlers

    def handler(self, sig: int):
        return self.handlers.get(sig, SIG_DFL)

    def set_handler(self, sig: int, action) -> None:
        self.handlers[sig] = action

    def reset_handlers(self) -> None:
        """exec() resets caught signals to their defaults."""
        self.handlers = {
            sig: action for sig, action in self.handlers.items()
            if not callable(action)
        }

    # ------------------------------------------------------------------
    # duplication / teardown

    def fork_copy(self) -> "UArea":
        """Duplicate for fork/sproc: same values, fresh references."""
        child = UArea(self.cdir, self.rdir)
        child.fdtable = self.fdtable.fork_copy()
        child.cmask = self.cmask
        child.ulimit = self.ulimit
        child.uid = self.uid
        child.gid = self.gid
        child.handlers = dict(self.handlers)
        child.stack_max = self.stack_max
        return child

    def release_dirs(self) -> None:
        self.cdir.release()
        if self.rdir is not None:
            self.rdir.release()
