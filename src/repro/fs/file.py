"""Open file table entries.

One :class:`File` exists per ``open()``; descriptors in possibly many
processes point at it (``dup``, ``fork``, descriptor passing, and the
share group's ``s_ofile`` copy all add references).  The shared offset is
what makes descriptor sharing in a share group behave like the paper's
asynchronous-I/O example: a child's ``read`` advances the offset the
parent sees.
"""

from __future__ import annotations

from repro.errors import EBADF, ESPIPE, SimulationError, SysError
from repro.fs.inode import Inode, InodeType

#: open flags
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_ACCMODE = 0x3
O_APPEND = 0x8
O_CREAT = 0x100
O_TRUNC = 0x200
O_EXCL = 0x400
O_NDELAY = 0x800

#: lseek whence
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class File:
    """An entry in the system open-file table."""

    def __init__(self, inode: Inode, flags: int):
        self.inode = inode.hold()
        self.flags = flags
        self.offset = 0
        self.refcount = 1
        self.socket = None  #: attached Socket for socket descriptors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<File ino=%d off=%d ref=%d>" % (
            self.inode.ino, self.offset, self.refcount,
        )

    # ------------------------------------------------------------------

    def hold(self) -> "File":
        if self.refcount <= 0:
            raise SimulationError("hold on closed file")
        self.refcount += 1
        return self

    def release(self):
        """Drop one reference; returns True when the file actually closed."""
        if self.refcount <= 0:
            raise SimulationError("file refcount underflow")
        self.refcount -= 1
        if self.refcount == 0:
            self.inode.release()
            return True
        return False

    # ------------------------------------------------------------------

    @property
    def readable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_WRONLY, O_RDWR)

    def require_readable(self) -> None:
        if not self.readable:
            raise SysError(EBADF)

    def require_writable(self) -> None:
        if not self.writable:
            raise SysError(EBADF)

    def seek(self, offset: int, whence: int) -> int:
        if self.inode.itype is InodeType.FIFO or self.socket is not None:
            raise SysError(ESPIPE)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = self.inode.size + offset
        else:
            from repro.errors import EINVAL

            raise SysError(EINVAL)
        if new < 0:
            from repro.errors import EINVAL

            raise SysError(EINVAL)
        self.offset = new
        return new
