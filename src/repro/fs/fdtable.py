"""Per-process file descriptor tables.

Descriptors are small integers indexing a per-process array of pointers
into the open file table — exactly the structure footnote 1 of the paper
describes.  Share groups do *not* share the table object itself: each
member keeps its own table and re-synchronizes it from the shared address
block's ``s_ofile`` copy at kernel entry (paper section 6.3).
:meth:`FDTable.sync_from` implements that resynchronization.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import EBADF, EMFILE, SysError
from repro.fs.file import File

#: per-process descriptor limit (generous for 1988, keeps tables small)
NOFILE = 64


class FDTable:
    """The per-process descriptor array."""

    def __init__(self, size: int = NOFILE):
        self.slots: List[Optional[File]] = [None] * size
        self.inject = None  #: FailPointRegistry, set by the kernel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        used = sum(1 for slot in self.slots if slot is not None)
        return "<FDTable %d/%d>" % (used, len(self.slots))

    # ------------------------------------------------------------------

    def alloc(self, file: File) -> int:
        """Install ``file`` at the lowest free descriptor (UNIX rule)."""
        if self.inject is not None and self.inject.fire("fd.alloc"):
            raise SysError(EMFILE, "injected at fd.alloc")
        for fd, slot in enumerate(self.slots):
            if slot is None:
                self.slots[fd] = file
                return fd
        raise SysError(EMFILE)

    def install_at(self, fd: int, file: File) -> None:
        self._check_range(fd)
        if self.slots[fd] is not None:
            self.slots[fd].release()
        self.slots[fd] = file

    def get(self, fd: int) -> File:
        self._check_range(fd)
        file = self.slots[fd]
        if file is None:
            raise SysError(EBADF)
        return file

    def remove(self, fd: int) -> File:
        """Clear the slot and return the file (caller releases it)."""
        file = self.get(fd)
        self.slots[fd] = None
        return file

    def dup(self, fd: int) -> int:
        file = self.get(fd)
        file.hold()
        try:
            return self.alloc(file)
        except SysError:
            file.release()
            raise

    def dup2(self, fd: int, newfd: int) -> int:
        file = self.get(fd)
        if newfd == fd:
            return fd
        file.hold()
        try:
            self.install_at(newfd, file)
        except SysError:
            file.release()
            raise
        return newfd

    # ------------------------------------------------------------------

    def open_fds(self) -> List[int]:
        return [fd for fd, slot in enumerate(self.slots) if slot is not None]

    def close_all(self) -> List[File]:
        """Empty the table; returns files for the caller to release."""
        files = [slot for slot in self.slots if slot is not None]
        self.slots = [None] * len(self.slots)
        return files

    def fork_copy(self) -> "FDTable":
        """Duplicate for fork: same files, extra reference each."""
        child = FDTable(len(self.slots))
        child.inject = self.inject
        for fd, slot in enumerate(self.slots):
            if slot is not None:
                child.slots[fd] = slot.hold()
        return child

    def snapshot(self) -> List[Optional[File]]:
        """A plain copy of the slot array (no reference changes)."""
        return list(self.slots)

    def sync_from(self, master: List[Optional[File]], dispose=None) -> int:
        """Re-synchronize from the share group's ``s_ofile`` copy.

        Slots that differ are replaced: newly shared files gain a
        reference, dropped ones lose it.  ``dispose`` (the kernel's
        release routine) handles the case where ours was the last
        reference and endpoint bookkeeping must run.  Returns the number
        of slots changed (the kernel charges sync cost per change).
        """
        changed = 0
        for fd in range(len(self.slots)):
            mine = self.slots[fd]
            theirs = master[fd] if fd < len(master) else None
            if mine is theirs:
                continue
            if theirs is not None:
                theirs.hold()
            if mine is not None:
                if dispose is not None:
                    dispose(mine)
                else:
                    mine.release()
            self.slots[fd] = theirs
            changed += 1
        return changed

    # ------------------------------------------------------------------

    def _check_range(self, fd: int) -> None:
        if not 0 <= fd < len(self.slots):
            raise SysError(EBADF)
