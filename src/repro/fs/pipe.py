"""Pipes: the Version-7 queueing primitive.

Pipes are the baseline communication path the paper's Figure 1 world is
built on, and one of the comparison points for experiments E6/E7/E10.
Semantics follow classic UNIX: bounded buffer, readers block on empty,
writers block on full, EOF when the last writer closes, ``EPIPE`` (plus
``SIGPIPE``, raised by the kernel layer) when the last reader closes.
"""

from __future__ import annotations

from repro.errors import EINTR, EPIPE, SysError
from repro.sync.semaphore import Semaphore

#: classic pipe capacity (ten 512-byte blocks, as in V7)
PIPE_BUF = 5120


class BrokenPipe(Exception):
    """Raised to the kernel layer so it can post SIGPIPE before EPIPE."""


class Pipe:
    """A bounded in-kernel byte queue with blocking endpoints."""

    def __init__(self, machine, waker, capacity: int = PIPE_BUF):
        self.capacity = capacity
        self._inject = getattr(machine, "inject", None)
        self.buffer = bytearray()
        self.readers = 1
        self.writers = 1
        self._read_wait = Semaphore(machine, waker, 0, "pipe.read")
        self._write_wait = Semaphore(machine, waker, 0, "pipe.write")
        # Waiter counts are banked *before* sleeping and paid out with
        # v() (which increments when nobody sleeps yet), so a wakeup
        # issued between a blocker's buffer check and its sleep is never
        # lost.
        self._read_waiters = 0
        self._write_waiters = 0
        self.bytes_moved = 0

    def _wake_readers(self) -> None:
        for _ in range(self._read_waiters):
            self._read_wait.v()
        self._read_waiters = 0

    def _wake_writers(self) -> None:
        for _ in range(self._write_waiters):
            self._write_wait.v()
        self._write_waiters = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Pipe %d/%d r=%d w=%d>" % (
            len(self.buffer), self.capacity, self.readers, self.writers,
        )

    # ------------------------------------------------------------------
    # endpoint lifecycle (called from the kernel close path)

    def close_read_end(self) -> None:
        self.readers -= 1
        if self.readers == 0:
            self._wake_writers()  # writers must see EPIPE

    def close_write_end(self) -> None:
        self.writers -= 1
        if self.writers == 0:
            self._wake_readers()  # readers must see EOF

    def add_read_end(self) -> None:
        self.readers += 1

    def add_write_end(self) -> None:
        self.writers += 1

    # ------------------------------------------------------------------
    # data movement (generators; kernel charges copy costs)

    def read(self, proc, nbytes: int):
        """Take up to ``nbytes``; blocks while empty and writers remain."""
        while True:
            if self.buffer:
                take = min(nbytes, len(self.buffer))
                chunk = bytes(self.buffer[:take])
                del self.buffer[:take]
                self.bytes_moved += take
                self._wake_writers()
                return chunk
            if self.writers == 0:
                return b""  # EOF
            if self._inject is not None and self._inject.fire("pipe.read.sleep"):
                raise SysError(EINTR, "injected: signal before pipe read sleep")
            self._read_waiters += 1
            ok = yield from self._read_wait.p(proc, interruptible=True)
            if not ok:
                # Our banked wakeup claim must go with us, or the next
                # _wake_readers over-credits the semaphore.
                self._read_waiters = max(self._read_waiters - 1, 0)
                raise SysError(EINTR)

    def write(self, proc, payload: bytes):
        """Append all of ``payload``; blocks while the buffer is full."""
        written = 0
        while written < len(payload):
            if self.readers == 0:
                raise BrokenPipe()
            space = self.capacity - len(self.buffer)
            if space > 0:
                chunk = payload[written:written + space]
                self.buffer.extend(chunk)
                written += len(chunk)
                self._wake_readers()
                continue
            if self._inject is not None and self._inject.fire("pipe.write.sleep"):
                raise SysError(EINTR, "injected: signal before pipe write sleep")
            self._write_waiters += 1
            ok = yield from self._write_wait.p(proc, interruptible=True)
            if not ok:
                self._write_waiters = max(self._write_waiters - 1, 0)
                raise SysError(EINTR)
        return written

    # ------------------------------------------------------------------

    @property
    def fill(self) -> int:
        return len(self.buffer)


def raise_epipe() -> None:
    """Helper for the kernel layer after posting SIGPIPE."""
    raise SysError(EPIPE)
