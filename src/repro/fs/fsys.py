"""The in-memory filesystem and ``namei`` path resolution.

Path walks honor the caller's current directory, its root directory
(``chroot`` confinement — the share group can retarget both for every
member at once, one of the paper's motivating conveniences), and classic
permission checks against the caller's effective uid/gid.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import (
    EEXIST,
    EINVAL,
    ENAMETOOLONG,
    ENOENT,
    SysError,
)
from repro.fs.inode import IEXEC, IWRITE, Inode, InodeType

MAX_PATH = 1024
MAX_COMPONENT = 255


class Credentials:
    """Effective identity used for permission checks during a walk."""

    __slots__ = ("uid", "gid")

    def __init__(self, uid: int = 0, gid: int = 0):
        self.uid = uid
        self.gid = gid


class FileSystem:
    """A single rooted, in-memory filesystem."""

    def __init__(self):
        self.root = Inode(InodeType.DIR, mode=0o755)
        self.root.nlink = 1
        self.root.hold()  # the filesystem itself keeps the root live
        self._parents = {self.root.ino: self.root}

    # ------------------------------------------------------------------
    # path resolution

    def namei(
        self,
        path: str,
        cdir: Inode,
        rdir: Optional[Inode] = None,
        cred: Optional[Credentials] = None,
    ) -> Inode:
        """Resolve ``path`` to an inode or raise ``ENOENT``/``ENOTDIR``."""
        parent, name = self._walk(path, cdir, rdir, cred)
        if name is None:
            return parent
        target = parent.dir_lookup(name)
        if target is None:
            raise SysError(ENOENT, path)
        return target

    def namei_parent(
        self,
        path: str,
        cdir: Inode,
        rdir: Optional[Inode] = None,
        cred: Optional[Credentials] = None,
    ) -> Tuple[Inode, str]:
        """Resolve to (parent directory, final component) for create paths."""
        parent, name = self._walk(path, cdir, rdir, cred)
        if name is None:
            raise SysError(EINVAL, "path names a directory root")
        return parent, name

    def _walk(
        self,
        path: str,
        cdir: Inode,
        rdir: Optional[Inode],
        cred: Optional[Credentials],
    ) -> Tuple[Inode, Optional[str]]:
        if not path:
            raise SysError(ENOENT, "empty path")
        if len(path) > MAX_PATH:
            raise SysError(ENAMETOOLONG, path[:32] + "...")
        root = rdir if rdir is not None else self.root
        node = root if path.startswith("/") else cdir
        parts = [part for part in path.split("/") if part]
        if not parts:
            return node, None
        for part in parts[:-1]:
            node = self._step(node, part, root, cred)
            node.require_dir()
        last = parts[-1]
        if len(last) > MAX_COMPONENT:
            raise SysError(ENAMETOOLONG, last[:32] + "...")
        if last in (".", ".."):
            return self._step(node, last, root, cred), None
        node.require_dir()
        self._may_search(node, cred)
        return node, last

    def _step(self, node: Inode, part: str, root: Inode, cred) -> Inode:
        if len(part) > MAX_COMPONENT:
            raise SysError(ENAMETOOLONG, part[:32] + "...")
        node.require_dir()
        self._may_search(node, cred)
        if part == ".":
            return node
        if part == "..":
            if node is root:
                return node  # chroot barrier: cannot climb above the root
            return self._parents.get(node.ino, root)
        child = node.dir_lookup(part)
        if child is None:
            raise SysError(ENOENT, part)
        return child

    @staticmethod
    def _may_search(node: Inode, cred: Optional[Credentials]) -> None:
        if cred is not None:
            node.access(cred.uid, cred.gid, IEXEC)

    # ------------------------------------------------------------------
    # namespace mutation (single-threaded inside kernel syscalls)

    def create(
        self,
        parent: Inode,
        name: str,
        itype: InodeType,
        mode: int,
        cred: Optional[Credentials] = None,
    ) -> Inode:
        parent.require_dir()
        if cred is not None:
            parent.access(cred.uid, cred.gid, IWRITE)
        if parent.dir_lookup(name) is not None:
            raise SysError(EEXIST, name)
        node = Inode(
            itype,
            mode=mode,
            uid=cred.uid if cred else 0,
            gid=cred.gid if cred else 0,
        )
        parent.dir_add(name, node)
        if itype is InodeType.DIR:
            self._parents[node.ino] = parent
        return node

    def unlink(self, parent: Inode, name: str, cred=None) -> None:
        parent.require_dir()
        if cred is not None:
            parent.access(cred.uid, cred.gid, IWRITE)
        node = parent.dir_lookup(name)
        if node is None:
            raise SysError(ENOENT, name)
        if node.itype is InodeType.DIR:
            node.dir_empty()
            self._parents.pop(node.ino, None)
        parent.dir_remove(name)

    def mkdir_p(self, path: str, mode: int = 0o755) -> Inode:
        """Host-side helper: build a directory path from the real root."""
        node = self.root
        for part in [p for p in path.split("/") if p]:
            child = node.dir_lookup(part)
            if child is None:
                child = self.create(node, part, InodeType.DIR, mode)
            child.require_dir()
            node = child
        return node

    def add_file(self, path: str, contents: bytes = b"", mode: int = 0o644) -> Inode:
        """Host-side helper: create a regular file with initial contents."""
        directory, _, name = path.rpartition("/")
        parent = self.mkdir_p(directory) if directory else self.root
        node = self.create(parent, name, InodeType.REG, mode)
        node.data[:] = contents
        return node

    def add_program(self, path: str, program_name: str, mode: int = 0o755) -> Inode:
        """Host-side helper: an executable whose image is a registered program."""
        node = self.add_file(path, b"#!program\n", mode)
        node.program = program_name
        return node
