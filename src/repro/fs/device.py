"""Character devices: the little ones every UNIX ships.

Devices attach to ``CHR`` inodes; the kernel's read/write paths call
:meth:`Device.read`/``write`` synchronously (no seek, no latency — these
are memory-speed pseudo-devices).
"""

from __future__ import annotations


class Device:
    """Base character device."""

    name = "dev"

    def read(self, nbytes: int) -> bytes:
        raise NotImplementedError

    def write(self, payload: bytes) -> int:
        raise NotImplementedError


class NullDevice(Device):
    """/dev/null: reads EOF, writes vanish."""

    name = "null"

    def read(self, nbytes: int) -> bytes:
        return b""

    def write(self, payload: bytes) -> int:
        return len(payload)


class ZeroDevice(Device):
    """/dev/zero: endless zeroes."""

    name = "zero"

    def read(self, nbytes: int) -> bytes:
        return b"\x00" * nbytes

    def write(self, payload: bytes) -> int:
        return len(payload)


class SinkRecorderDevice(Device):
    """A test/diagnostic device that remembers everything written."""

    name = "sink"

    def __init__(self):
        self.received = bytearray()

    def read(self, nbytes: int) -> bytes:
        return b""

    def write(self, payload: bytes) -> int:
        self.received += payload
        return len(payload)
