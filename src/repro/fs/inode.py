"""In-core inodes for the simulated filesystem.

The filesystem is entirely in-memory but keeps the structure the kernel
cares about: reference-counted inodes, directory entries, link counts,
and owner/mode bits for permission checks.  Share groups hold extra
references on the current/root directory inodes from the shared address
block (paper section 6.3), which these counts make safe.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.errors import EACCES, EISDIR, ENOTDIR, ENOTEMPTY, SimulationError, SysError


class InodeType(enum.Enum):
    REG = "reg"
    DIR = "dir"
    FIFO = "fifo"
    CHR = "chr"


#: permission bits
IREAD = 0o4
IWRITE = 0o2
IEXEC = 0o1


class Inode:
    """One filesystem object."""

    _next_ino = 0

    def __init__(
        self,
        itype: InodeType,
        mode: int = 0o644,
        uid: int = 0,
        gid: int = 0,
    ):
        Inode._next_ino += 1
        self.ino = Inode._next_ino
        self.itype = itype
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = 0  #: directory entries referencing this inode
        self.refcount = 0  #: in-core references (open files, cdir/rdir, shaddr)
        self.data = bytearray()  #: REG contents
        self.entries: Dict[str, "Inode"] = {}  #: DIR contents
        self.fifo = None  #: attached Pipe for FIFO inodes
        self.program: Optional[str] = None  #: registered program name, if executable
        self.device = None  #: attached device object for CHR inodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Inode %d %s nlink=%d ref=%d>" % (
            self.ino, self.itype.value, self.nlink, self.refcount,
        )

    # ------------------------------------------------------------------
    # reference counting

    def hold(self) -> "Inode":
        self.refcount += 1
        return self

    def release(self) -> None:
        if self.refcount <= 0:
            raise SimulationError("inode %d refcount underflow" % self.ino)
        self.refcount -= 1

    @property
    def live(self) -> bool:
        """Still reachable by name or by an in-core reference."""
        return self.nlink > 0 or self.refcount > 0

    # ------------------------------------------------------------------
    # type checks

    def require_dir(self) -> None:
        if self.itype is not InodeType.DIR:
            raise SysError(ENOTDIR)

    def require_not_dir(self) -> None:
        if self.itype is InodeType.DIR:
            raise SysError(EISDIR)

    # ------------------------------------------------------------------
    # permissions

    def access(self, uid: int, gid: int, want: int) -> None:
        """Raise EACCES unless credentials allow ``want`` (IREAD etc.)."""
        if uid == 0:
            return  # superuser
        if uid == self.uid:
            granted = (self.mode >> 6) & 0o7
        elif gid == self.gid:
            granted = (self.mode >> 3) & 0o7
        else:
            granted = self.mode & 0o7
        if want & ~granted:
            raise SysError(EACCES)

    # ------------------------------------------------------------------
    # directory operations (callers hold the fs lock)

    def dir_lookup(self, name: str) -> Optional["Inode"]:
        self.require_dir()
        return self.entries.get(name)

    def dir_add(self, name: str, child: "Inode") -> None:
        self.require_dir()
        if name in self.entries:
            raise SimulationError("duplicate entry %r" % name)
        self.entries[name] = child
        child.nlink += 1

    def dir_remove(self, name: str) -> "Inode":
        self.require_dir()
        child = self.entries.pop(name)
        child.nlink -= 1
        return child

    def dir_empty(self) -> None:
        self.require_dir()
        if self.entries:
            raise SysError(ENOTEMPTY)

    # ------------------------------------------------------------------
    # regular file data

    @property
    def size(self) -> int:
        return len(self.data)

    def read_at(self, offset: int, nbytes: int) -> bytes:
        if offset >= len(self.data):
            return b""
        return bytes(self.data[offset:offset + nbytes])

    def write_at(self, offset: int, payload: bytes) -> int:
        if offset > len(self.data):
            self.data.extend(b"\x00" * (offset - len(self.data)))
        end = offset + len(payload)
        self.data[offset:end] = payload
        return len(payload)

    def truncate(self) -> None:
        del self.data[:]
