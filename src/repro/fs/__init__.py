"""Filesystem substrate: inodes, open files, descriptor tables, pipes."""

from repro.fs.fdtable import NOFILE, FDTable
from repro.fs.file import (
    File,
    O_ACCMODE,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_NDELAY,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.fs.fsys import Credentials, FileSystem
from repro.fs.inode import Inode, InodeType
from repro.fs.pipe import PIPE_BUF, BrokenPipe, Pipe

__all__ = [
    "BrokenPipe",
    "Credentials",
    "FDTable",
    "File",
    "FileSystem",
    "Inode",
    "InodeType",
    "NOFILE",
    "O_ACCMODE",
    "O_APPEND",
    "O_CREAT",
    "O_EXCL",
    "O_NDELAY",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "PIPE_BUF",
    "Pipe",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
]
