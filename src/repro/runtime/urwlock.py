"""A user-level reader-writer lock on shared memory.

The same shape as the kernel's shared read lock (section 6.2) — many
readers, one writer, writer waits for readers to drain — but implemented
entirely with user-mode atomics, so share-group applications can protect
their own read-mostly structures without kernel entries.

Layout: one word.  Value ``-1`` (stored as 0xFFFFFFFF) means a writer
holds the lock; ``0`` free; ``n > 0`` means ``n`` readers.
"""

from __future__ import annotations

from repro.errors import SimulationError

_WRITER = 0xFFFFFFFF


class URWLock:
    """Reader-preference user rwlock (mirrors the paper's kernel lock)."""

    def __init__(self, vaddr: int, spins_before_yield: int = 64, name=None):
        self.vaddr = vaddr
        self.spins_before_yield = spins_before_yield
        self.name = name if name is not None else "urw@%#x" % vaddr
        self._write_since = 0

    def _stats(self, api):
        return api.kernel.machine.lockstats.get(self.name)

    def _lockdep(self, api):
        return api.kernel.machine.lockdep

    def _backoff(self, api, polls: int):
        if polls and polls % self.spins_before_yield == 0:
            yield from api.yield_cpu()

    def acquire_read(self, api):
        """Generator: join the readers (spins out any writer)."""
        entered = api.now
        polls = 0
        self._lockdep(api).attempt(self, api.proc, "read")
        while True:
            value = yield from api.load_word(self.vaddr)
            if value != _WRITER:
                observed = yield from api.cas(self.vaddr, value, value + 1)
                if observed == value:
                    self._stats(api).record_acquire(
                        api.now - entered, polls > 0
                    )
                    self._lockdep(api).acquired(self, api.proc, "read")
                    return
            polls += 1
            yield from self._backoff(api, polls)

    def release_read(self, api):
        """Generator: leave the readers."""
        while True:
            value = yield from api.load_word(self.vaddr)
            if value == 0 or value == _WRITER:
                # A decrement here would underflow the free word into
                # the writer sentinel (0 - 1 == 0xFFFFFFFF): the word
                # would read as write-locked forever.
                raise SimulationError(
                    "release_read on %s with no readers (word=%#x)"
                    % (self.name, value)
                )
            observed = yield from api.cas(self.vaddr, value, value - 1)
            if observed == value:
                self._lockdep(api).released(self, api.proc)
                return

    def acquire_write(self, api):
        """Generator: wait until free, then take exclusively."""
        entered = api.now
        polls = 0
        self._lockdep(api).attempt(self, api.proc, "write")
        while True:
            observed = yield from api.cas(self.vaddr, 0, _WRITER)
            if observed == 0:
                self._stats(api).record_acquire(api.now - entered, polls > 0)
                self._write_since = api.now
                self._lockdep(api).acquired(self, api.proc, "write")
                return
            polls += 1
            yield from self._backoff(api, polls)

    def release_write(self, api):
        """Generator: drop exclusivity."""
        value = yield from api.load_word(self.vaddr)
        if value != _WRITER:
            # Storing 0 anyway would silently free a lock some reader
            # holds (or double-free a free one).
            raise SimulationError(
                "release_write on %s not write-held (word=%#x)"
                % (self.name, value)
            )
        self._stats(api).record_hold(api.now - self._write_since)
        self._lockdep(api).released(self, api.proc)
        yield from api.store_word(self.vaddr, 0)

    def readers(self, api):
        """Generator: current reader count (0 if writer or free)."""
        value = yield from api.load_word(self.vaddr)
        return 0 if value == _WRITER else value


class USema:
    """A counting semaphore on one shared word (busy-waiting down)."""

    def __init__(self, vaddr: int, spins_before_yield: int = 64):
        self.vaddr = vaddr
        self.spins_before_yield = spins_before_yield

    def init(self, api, value: int):
        yield from api.store_word(self.vaddr, value)

    def down(self, api):
        """Generator: decrement, spinning while the count is zero."""
        polls = 0
        while True:
            value = yield from api.load_word(self.vaddr)
            if value > 0:
                observed = yield from api.cas(self.vaddr, value, value - 1)
                if observed == value:
                    return
            polls += 1
            if polls % self.spins_before_yield == 0:
                yield from api.yield_cpu()

    def try_down(self, api):
        """Generator: one attempt; True on success."""
        value = yield from api.load_word(self.vaddr)
        if value <= 0:
            return False
        observed = yield from api.cas(self.vaddr, value, value - 1)
        return observed == value

    def up(self, api):
        """Generator: increment (never blocks)."""
        yield from api.fetch_add(self.vaddr, 1)

    def value(self, api):
        result = yield from api.load_word(self.vaddr)
        return result
