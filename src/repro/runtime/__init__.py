"""User-level runtime library: locks, arenas, work pools, async I/O.

This layer plays the role of the C library in the paper's world — it
lives entirely in guest memory and uses only user-mode instructions plus
ordinary system calls, so everything here works identically on the
simulated uniprocessor and multiprocessor.
"""

from repro.runtime.aio import AIO_READ, AIO_WRITE, AioRing, aio_worker
from repro.runtime.prda import (
    PRDA_ERRNO,
    PRDA_SCRATCH,
    PRDA_USER,
    PRDA_USER_SIZE,
    clear_errno,
    errno,
)
from repro.runtime.hybridlock import HybridLock
from repro.runtime.shmalloc import Arena, SIZE_CLASSES
from repro.runtime.ulocks import UBarrier, UCounter, USpinLock
from repro.runtime.urwlock import URWLock, USema
from repro.runtime.workqueue import WorkQueue, run_pool

__all__ = [
    "AIO_READ",
    "AIO_WRITE",
    "AioRing",
    "Arena",
    "HybridLock",
    "PRDA_ERRNO",
    "PRDA_SCRATCH",
    "PRDA_USER",
    "PRDA_USER_SIZE",
    "SIZE_CLASSES",
    "UBarrier",
    "URWLock",
    "USema",
    "UCounter",
    "USpinLock",
    "WorkQueue",
    "aio_worker",
    "clear_errno",
    "errno",
    "run_pool",
]
