"""A spin-then-block lock on a shared word (uses uwait/uwake).

The refinement of the paper's busy-wait argument for the oversubscribed
case: spin briefly (the common, short-hold path costs nothing extra),
then ask the kernel to sleep until the holder pokes the word.  When the
group has more runnable members than processors, this avoids burning
whole quanta spinning at a descheduled lock holder — the pathology the
paper's gang-scheduling hint attacks from the scheduler side, solved
here from the synchronization side.  Experiment E14 compares the two
regimes.

Word protocol: 0 free, 1 held, 2 held-with-sleepers.
"""

from __future__ import annotations

_FREE = 0
_HELD = 1
_CONTENDED = 2


class HybridLock:
    """Spin-then-block mutual exclusion on one shared word."""

    def __init__(self, vaddr: int, spins: int = 32):
        self.vaddr = vaddr
        self.spins = spins

    def acquire(self, api):
        """Generator: take the lock, sleeping in the kernel if contended."""
        observed = yield from api.cas(self.vaddr, _FREE, _HELD)
        if observed == _FREE:
            return
        while True:
            # brief optimistic spin (the paper's fast path)
            for _ in range(self.spins):
                observed = yield from api.cas(self.vaddr, _FREE, _HELD)
                if observed == _FREE:
                    return
            # mark contended and sleep until the holder wakes us
            observed = yield from api.cas(self.vaddr, _HELD, _CONTENDED)
            if observed == _FREE:
                observed = yield from api.cas(self.vaddr, _FREE, _HELD)
                if observed == _FREE:
                    return
                continue
            yield from api.uwait(self.vaddr, _CONTENDED)
            # raced awake: try to grab, claiming contended state so the
            # unlocker keeps waking others
            observed = yield from api.cas(self.vaddr, _FREE, _CONTENDED)
            if observed == _FREE:
                return

    def release(self, api):
        """Generator: free the lock; wake one sleeper if any."""
        observed = yield from api.cas(self.vaddr, _HELD, _FREE)
        if observed == _HELD:
            return
        # contended: clear and wake one sleeper to take over
        yield from api.store_word(self.vaddr, _FREE)
        yield from api.uwake(self.vaddr, 1)
