"""Self-scheduling work queues (paper section 3).

"The scheduling model used in such applications is *self-scheduling*, in
which an independent task waits for work to be queued, and competes for
that work with other tasks."  A pool of ``sproc``'d processes is created
once, before the parallel section, and each member pulls work items off a
queue in shared memory — so there is no per-task creation cost at all,
which is the paper's answer to "threads create 10x faster than fork".

Queue layout (word offsets from base):

====== ==================================
0      lock word
4      head index (next item to take)
8      tail index (next free slot)
12     closed flag
16     capacity (items)
20+    item slots (one word each)
====== ==================================
"""

from __future__ import annotations

from repro.runtime.ulocks import USpinLock

_HEADER_WORDS = 5


class WorkQueue:
    """A bounded FIFO of word-sized work items in shared memory."""

    def __init__(self, base: int, capacity: int):
        self.base = base
        self.capacity = capacity
        self.lock = USpinLock(base)

    # ------------------------------------------------------------------

    @classmethod
    def create(cls, api, capacity: int = 1024):
        """Generator: map and initialize a queue."""
        nbytes = (_HEADER_WORDS + capacity) * 4
        base = yield from api.mmap(nbytes)
        queue = cls(base, capacity)
        yield from api.store(base, b"\x00" * (_HEADER_WORDS * 4))
        yield from api.store_word(base + 16, capacity)
        return queue

    @classmethod
    def attach(cls, api, base: int):
        """Generator: bind to a queue created by another member."""
        capacity = yield from api.load_word(base + 16)
        return cls(base, capacity)

    def _slot(self, index: int) -> int:
        return self.base + (_HEADER_WORDS + index % self.capacity) * 4

    # ------------------------------------------------------------------

    def push(self, api, item: int):
        """Generator: append an item; spins while the queue is full."""
        while True:
            yield from self.lock.acquire(api)
            head = yield from api.load_word(self.base + 4)
            tail = yield from api.load_word(self.base + 8)
            if tail - head < self.capacity:
                yield from api.store_word(self._slot(tail), item)
                yield from api.store_word(self.base + 8, tail + 1)
                yield from self.lock.release(api)
                return
            yield from self.lock.release(api)
            yield from api.yield_cpu()

    def pop(self, api):
        """Generator: take the next item, or None once closed and empty."""
        while True:
            yield from self.lock.acquire(api)
            head = yield from api.load_word(self.base + 4)
            tail = yield from api.load_word(self.base + 8)
            if head < tail:
                item = yield from api.load_word(self._slot(head))
                yield from api.store_word(self.base + 4, head + 1)
                yield from self.lock.release(api)
                return item
            closed = yield from api.load_word(self.base + 12)
            yield from self.lock.release(api)
            if closed:
                return None
            yield from api.yield_cpu()

    def close(self, api):
        """Generator: mark the queue finished; poppers drain then stop."""
        yield from api.store_word(self.base + 12, 1)

    def pending(self, api):
        """Generator: items currently queued (racy, for monitoring)."""
        head = yield from api.load_word(self.base + 4)
        tail = yield from api.load_word(self.base + 8)
        return tail - head


def run_pool(api, nworkers: int, worker_entry, queue: "WorkQueue", shmask: int):
    """Generator: preallocate a pool of sproc'd workers on ``queue``.

    Returns the list of pids.  ``worker_entry(api, queue_base)`` is the
    child program; it should attach with :meth:`WorkQueue.attach` and
    loop on :meth:`WorkQueue.pop` until it returns None.
    """
    pids = []
    for _ in range(nworkers):
        pid = yield from api.sproc(worker_entry, shmask, queue.base)
        pids.append(pid)
    return pids
