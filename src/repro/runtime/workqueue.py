"""Self-scheduling work queues (paper section 3).

"The scheduling model used in such applications is *self-scheduling*, in
which an independent task waits for work to be queued, and competes for
that work with other tasks."  A pool of ``sproc``'d processes is created
once, before the parallel section, and each member pulls work items off a
queue in shared memory — so there is no per-task creation cost at all,
which is the paper's answer to "threads create 10x faster than fork".

Queue layout (word offsets from base):

====== ==================================
0      lock word
4      head index (next item to take)
8      tail index (next free slot)
12     closed flag
16     capacity (items)
20+    item slots (one word each)
====== ==================================
"""

from __future__ import annotations

from repro.runtime.ulocks import USpinLock

_HEADER_WORDS = 5


class WorkQueue:
    """A bounded FIFO of word-sized work items in shared memory."""

    def __init__(self, base: int, capacity: int):
        self.base = base
        self.capacity = capacity
        self.lock = USpinLock(base)

    # ------------------------------------------------------------------

    @classmethod
    def create(cls, api, capacity: int = 1024):
        """Generator: map and initialize a queue."""
        nbytes = (_HEADER_WORDS + capacity) * 4
        base = yield from api.mmap(nbytes)
        queue = cls(base, capacity)
        yield from api.store(base, b"\x00" * (_HEADER_WORDS * 4))
        yield from api.store_word(base + 16, capacity)
        return queue

    @classmethod
    def attach(cls, api, base: int):
        """Generator: bind to a queue created by another member."""
        capacity = yield from api.load_word(base + 16)
        return cls(base, capacity)

    def _slot(self, index: int) -> int:
        return self.base + (_HEADER_WORDS + index % self.capacity) * 4

    # ------------------------------------------------------------------

    def push(self, api, item: int):
        """Generator: append an item; spins while the queue is full."""
        while True:
            yield from self.lock.acquire(api)
            head = yield from api.load_word(self.base + 4)
            tail = yield from api.load_word(self.base + 8)
            if tail - head < self.capacity:
                yield from api.store_word(self._slot(tail), item)
                yield from api.store_word(self.base + 8, tail + 1)
                yield from self.lock.release(api)
                return
            yield from self.lock.release(api)
            yield from api.yield_cpu()

    def push_many(self, api, items):
        """Generator: append several items (spinning variant: one by
        one; the blocking subclass batches under a single lock hold)."""
        for item in items:
            yield from self.push(api, item)

    def pop(self, api):
        """Generator: take the next item, or None once closed and empty."""
        while True:
            yield from self.lock.acquire(api)
            head = yield from api.load_word(self.base + 4)
            tail = yield from api.load_word(self.base + 8)
            if head < tail:
                item = yield from api.load_word(self._slot(head))
                yield from api.store_word(self.base + 4, head + 1)
                yield from self.lock.release(api)
                return item
            closed = yield from api.load_word(self.base + 12)
            yield from self.lock.release(api)
            if closed:
                return None
            yield from api.yield_cpu()

    def close(self, api):
        """Generator: mark the queue finished; poppers drain then stop."""
        yield from api.store_word(self.base + 12, 1)

    def pending(self, api):
        """Generator: items currently queued (racy, for monitoring)."""
        head = yield from api.load_word(self.base + 4)
        tail = yield from api.load_word(self.base + 8)
        return tail - head


class BlockingWorkQueue(WorkQueue):
    """A :class:`WorkQueue` whose poppers and pushers *sleep* when stuck.

    The base class spin-yields, which is the right call for short bursts
    but generates an unbounded event stream from idle workers in
    long-running server scenarios.  This variant parks on ``uwait``
    (kernel/usync.py) instead, using two sequence words appended after
    the item slots (the base header/slot layout is untouched):

    * ``not-empty seq`` — bumped by every push and by close; poppers
      that found the queue empty sleep on it.
    * ``not-full seq`` — bumped by every pop and by close; pushers that
      found the queue full sleep on it.
    * two ``waiters`` words — how many sleepers each sequence word has.
      A waker only issues the ``uwake`` syscall when its waiters word is
      non-zero, so the common uncontended push/pop costs no kernel entry
      (the futex trick).  Sleepers bump the count under the lock before
      releasing it and drop it after waking, so a waker that sees zero
      is guaranteed there is no one between lock-release and sleep: the
      kernel-side ``uwait`` re-check covers exactly that window.

    All four words are only written under the queue lock and read under
    it before sleeping, and ``uwait`` re-checks the word under the
    kernel usync lock — so a transition between the unlocked window and
    the sleep is never lost.  ``close`` bumps both sequence words (a
    closed queue is a state change neither index reflects) and
    broadcasts unconditionally.  Only usable within one share group
    (usync channels are keyed by address space).
    """

    def _ne_seq(self) -> int:
        return self.base + (_HEADER_WORDS + self.capacity) * 4

    def _nf_seq(self) -> int:
        return self.base + (_HEADER_WORDS + self.capacity + 1) * 4

    def _ne_waiters(self) -> int:
        return self.base + (_HEADER_WORDS + self.capacity + 2) * 4

    def _nf_waiters(self) -> int:
        return self.base + (_HEADER_WORDS + self.capacity + 3) * 4

    @classmethod
    def create(cls, api, capacity: int = 1024):
        """Generator: map and initialize a queue (+4 sleep words)."""
        nbytes = (_HEADER_WORDS + capacity + 4) * 4
        base = yield from api.mmap(nbytes)
        queue = cls(base, capacity)
        yield from api.store(base, b"\x00" * (_HEADER_WORDS * 4))
        yield from api.store_word(base + 16, capacity)
        yield from api.store(queue._ne_seq(), b"\x00" * 16)
        return queue

    def _sleep(self, api, seq_addr: int, seq: int, waiters_addr: int):
        """Generator: park on ``seq_addr`` (caller holds the lock and
        read ``seq`` under it); registers in the waiters word."""
        count = yield from api.load_word(waiters_addr)
        yield from api.store_word(waiters_addr, count + 1)
        yield from self.lock.release(api)
        yield from api.uwait(seq_addr, seq)
        yield from self.lock.acquire(api)
        count = yield from api.load_word(waiters_addr)
        yield from api.store_word(waiters_addr, count - 1)
        yield from self.lock.release(api)

    def push(self, api, item: int):
        """Generator: append an item; sleeps while the queue is full."""
        yield from self.push_many(api, [item])

    def push_many(self, api, items):
        """Generator: append items under one lock hold (waking poppers
        once) — sleeps whenever the queue fills mid-way."""
        sent = 0
        while sent < len(items):
            yield from self.lock.acquire(api)
            head = yield from api.load_word(self.base + 4)
            tail = yield from api.load_word(self.base + 8)
            room = self.capacity - (tail - head)
            if room > 0:
                take = min(room, len(items) - sent)
                for offset in range(take):
                    yield from api.store_word(
                        self._slot(tail + offset), items[sent + offset])
                yield from api.store_word(self.base + 8, tail + take)
                ne = yield from api.load_word(self._ne_seq())
                yield from api.store_word(self._ne_seq(), (ne + 1) & 0x7FFFFFFF)
                sleepers = yield from api.load_word(self._ne_waiters())
                yield from self.lock.release(api)
                if sleepers:
                    yield from api.uwake(self._ne_seq(), take)
                sent += take
            else:
                nf = yield from api.load_word(self._nf_seq())
                yield from self._sleep(
                    api, self._nf_seq(), nf, self._nf_waiters())

    def pop(self, api):
        """Generator: take the next item; sleeps while empty, None once
        closed and drained."""
        while True:
            yield from self.lock.acquire(api)
            head = yield from api.load_word(self.base + 4)
            tail = yield from api.load_word(self.base + 8)
            if head < tail:
                item = yield from api.load_word(self._slot(head))
                yield from api.store_word(self.base + 4, head + 1)
                nf = yield from api.load_word(self._nf_seq())
                yield from api.store_word(self._nf_seq(), (nf + 1) & 0x7FFFFFFF)
                sleepers = yield from api.load_word(self._nf_waiters())
                yield from self.lock.release(api)
                if sleepers:
                    yield from api.uwake(self._nf_seq(), 1)
                return item
            closed = yield from api.load_word(self.base + 12)
            if closed:
                yield from self.lock.release(api)
                return None
            ne = yield from api.load_word(self._ne_seq())
            yield from self._sleep(api, self._ne_seq(), ne, self._ne_waiters())

    def close(self, api):
        """Generator: mark finished and wake every sleeper to drain."""
        yield from self.lock.acquire(api)
        yield from api.store_word(self.base + 12, 1)
        ne = yield from api.load_word(self._ne_seq())
        yield from api.store_word(self._ne_seq(), (ne + 1) & 0x7FFFFFFF)
        nf = yield from api.load_word(self._nf_seq())
        yield from api.store_word(self._nf_seq(), (nf + 1) & 0x7FFFFFFF)
        yield from self.lock.release(api)
        yield from api.uwake(self._ne_seq(), 1 << 30)
        yield from api.uwake(self._nf_seq(), 1 << 30)


def run_pool(api, nworkers: int, worker_entry, queue: "WorkQueue", shmask: int):
    """Generator: preallocate a pool of sproc'd workers on ``queue``.

    Returns the list of pids.  ``worker_entry(api, queue_base)`` is the
    child program; it should attach with :meth:`WorkQueue.attach` and
    loop on :meth:`WorkQueue.pop` until it returns None.
    """
    pids = []
    for _ in range(nworkers):
        pid = yield from api.sproc(worker_entry, shmask, queue.base)
        pids.append(pid)
    return pids
