"""A user-level allocator over a shared mapping.

Share-group programs need somewhere to put shared data structures; this
is the library's equivalent of a shared-arena ``malloc``.  The arena is
any mapping obtained from ``api.mmap`` (visible to the whole group when
the VM is shared).  Allocation is a locked bump pointer with an explicit
LIFO free list per size class — simple, deterministic and entirely inside
guest memory, so every allocation exercises the real sharing machinery.

Arena layout (word offsets from base):

====== ===========================================
0      lock word
4      bump offset (bytes from base)
8      arena size (bytes)
12..44 free-list heads for the 8 size classes
====== ===========================================
"""

from __future__ import annotations

from repro.runtime.ulocks import USpinLock

_HEADER_BYTES = 48
#: size classes in bytes (allocations round up to one of these)
SIZE_CLASSES = (16, 32, 64, 128, 256, 1024, 4096, 16384)


def _class_index(nbytes: int) -> int:
    for index, size in enumerate(SIZE_CLASSES):
        if nbytes <= size:
            return index
    raise ValueError("allocation of %d bytes exceeds largest class" % nbytes)


class Arena:
    """Handle to a shared arena.  All methods are generators."""

    def __init__(self, base: int, size: int):
        self.base = base
        self.size = size
        self.lock = USpinLock(base)

    # ------------------------------------------------------------------

    @classmethod
    def create(cls, api, size: int = 256 * 1024):
        """Generator: map a fresh arena and initialize its header."""
        base = yield from api.mmap(size)
        arena = cls(base, size)
        yield from api.store_word(base + 4, _HEADER_BYTES)
        yield from api.store_word(base + 8, size)
        for index in range(len(SIZE_CLASSES)):
            yield from api.store_word(base + 12 + 4 * index, 0)
        return arena

    @classmethod
    def attach(cls, api, base: int):
        """Generator: bind to an arena created by another group member."""
        size = yield from api.load_word(base + 8)
        return cls(base, size)

    # ------------------------------------------------------------------

    def alloc(self, api, nbytes: int):
        """Generator: allocate; returns the block's virtual address.

        Each block is preceded by a 16-byte header holding its size
        class (used for free-list reuse and next-pointer linkage).
        """
        index = _class_index(nbytes)
        block_size = SIZE_CLASSES[index] + 16
        head_addr = self.base + 12 + 4 * index
        yield from self.lock.acquire(api)
        try:
            head = yield from api.load_word(head_addr)
            if head != 0:
                next_block = yield from api.load_word(head)
                yield from api.store_word(head_addr, next_block)
                yield from api.store_word(head + 4, index)
                return head + 16
            bump = yield from api.load_word(self.base + 4)
            inject = api.kernel.machine.inject
            if inject.fire("shmalloc.grow") or bump + block_size > self.size:
                raise MemoryError("shared arena exhausted")
            yield from api.store_word(self.base + 4, bump + block_size)
            block = self.base + bump
            yield from api.store_word(block + 4, index)
            return block + 16
        finally:
            yield from self.lock.release(api)

    def free(self, api, vaddr: int):
        """Generator: return a block to its size-class free list."""
        block = vaddr - 16
        index = yield from api.load_word(block + 4)
        head_addr = self.base + 12 + 4 * index
        yield from self.lock.acquire(api)
        try:
            head = yield from api.load_word(head_addr)
            yield from api.store_word(block, head)
            yield from api.store_word(head_addr, block)
        finally:
            yield from self.lock.release(api)

    def alloc_words(self, api, nwords: int):
        """Generator: allocate and zero ``nwords`` 32-bit words."""
        vaddr = yield from self.alloc(api, nwords * 4)
        yield from api.store(vaddr, b"\x00" * (nwords * 4))
        return vaddr
