"""PRDA conventions: the per-process data area (paper section 5.1).

The PRDA is one private page at a fixed virtual address in every process.
The layout used by this library (our "C library" convention):

====== ======================================================
offset contents
====== ======================================================
0      ``errno`` (written by the kernel's syscall trampoline)
4      per-process scratch word (library use)
64+    application area (``PRDA_USER``), free for programs
====== ======================================================
"""

from __future__ import annotations

from repro.mem.layout import PRDA_BASE, PRDA_SIZE

#: where errno lives (matches repro.kernel.kernel.ERRNO_OFFSET)
PRDA_ERRNO = PRDA_BASE
#: a scratch word reserved for the runtime library
PRDA_SCRATCH = PRDA_BASE + 4
#: start of the application-owned part of the PRDA
PRDA_USER = PRDA_BASE + 64
#: bytes available to the application
PRDA_USER_SIZE = PRDA_SIZE - 64


def errno(api):
    """Generator: read this process's errno from its PRDA."""
    value = yield from api.load_word(PRDA_ERRNO)
    return value


def clear_errno(api):
    """Generator: reset errno to zero."""
    yield from api.store_word(PRDA_ERRNO, 0)
