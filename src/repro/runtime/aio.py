"""User-level asynchronous I/O on a share group (paper section 4).

The paper's motivating example: "a user-level asynchronous I/O scheme
could be implemented by sharing the memory and file descriptors.  High
level I/O calls are translated into an equivalent call in a child shared
process, which performs the I/O directly from the original buffer and
then signals the parent."

The ring is a work queue plus a small arena, both in the group's shared
address space.  Workers are ``sproc``'d with ``PR_SADDR | PR_SFDS``: they
see every descriptor the submitter opens — including ones opened *after*
the workers started — and they read or write straight into the
submitter's buffers.  While a worker sleeps on the (simulated) disk, the
submitting process keeps computing: that overlap is what experiment E9
measures.

Control block layout (word offsets from its base): queue base, arena
base, file-position lock word.
"""

from __future__ import annotations

from typing import List

from repro.fs.file import SEEK_SET
from repro.runtime.shmalloc import Arena
from repro.runtime.ulocks import USpinLock
from repro.runtime.workqueue import BlockingWorkQueue, WorkQueue
from repro.share.mask import PR_SADDR, PR_SFDS

#: request opcodes
AIO_READ = 0
AIO_WRITE = 1
#: opcode flag: the submitter sleeps on the status word (uwait), so the
#: worker must uwake it after flagging completion
AIO_NOTIFY = 2

#: request block layout (word offsets)
_STATUS = 0
_RESULT = 4
_OPCODE = 8
_FD = 12
_BUF = 16
_NBYTES = 20
_OFFSET = 24
_REQUEST_WORDS = 8


class AioRing:
    """An asynchronous-I/O context shared by a group."""

    def __init__(self, ctl_base: int, queue: WorkQueue, arena: Arena):
        self.ctl_base = ctl_base
        self.queue = queue
        self.arena = arena
        self.fd_lock = USpinLock(ctl_base + 8)
        self.worker_pids: List[int] = []

    # ------------------------------------------------------------------
    # setup

    @classmethod
    def create(cls, api, nworkers: int = 2, queue_capacity: int = 64,
               blocking: bool = False, arena_bytes: int = 64 * 1024):
        """Generator: build the ring and start its worker pool.

        With ``blocking=True`` the request queue is a
        :class:`BlockingWorkQueue`, so idle workers park in ``uwait``
        instead of spin-yielding — essential for long-running server
        scenarios where rings sit idle between cache misses.
        """
        queue_cls = BlockingWorkQueue if blocking else WorkQueue
        ctl_base = yield from api.mmap(4096)
        queue = yield from queue_cls.create(api, queue_capacity)
        arena = yield from Arena.create(api, arena_bytes)
        yield from api.store_word(ctl_base, queue.base)
        yield from api.store_word(ctl_base + 4, arena.base)
        yield from api.store_word(ctl_base + 8, 0)
        yield from api.store_word(ctl_base + 12, 1 if blocking else 0)
        ring = cls(ctl_base, queue, arena)
        for _ in range(nworkers):
            pid = yield from api.sproc(aio_worker, PR_SADDR | PR_SFDS, ctl_base)
            ring.worker_pids.append(pid)
        return ring

    @classmethod
    def attach(cls, api, ctl_base: int):
        """Generator: bind to a ring created elsewhere in the group."""
        queue_base = yield from api.load_word(ctl_base)
        arena_base = yield from api.load_word(ctl_base + 4)
        blocking = yield from api.load_word(ctl_base + 12)
        queue_cls = BlockingWorkQueue if blocking else WorkQueue
        queue = yield from queue_cls.attach(api, queue_base)
        arena = yield from Arena.attach(api, arena_base)
        return cls(ctl_base, queue, arena)

    # ------------------------------------------------------------------
    # submission

    def prep_requests(self, api, count: int):
        """Generator: preallocate ``count`` reusable request blocks.

        A submitter that recycles its own blocks (resubmit only after
        completion, ``wait_block(..., free=False)``) keeps the arena
        allocator entirely off the per-I/O path.
        """
        blocks = []
        for _ in range(count):
            request = yield from self.arena.alloc_words(api, _REQUEST_WORDS)
            blocks.append(request)
        return blocks

    def _fill(self, api, request: int, opcode: int, fd: int, buf: int,
              nbytes: int, offset: int):
        # status=0, result=0, opcode..offset — one block store
        yield from api.store(
            request,
            b"\x00" * 8 + opcode.to_bytes(4, "little") +
            fd.to_bytes(4, "little") + buf.to_bytes(4, "little") +
            nbytes.to_bytes(4, "little") + offset.to_bytes(4, "little"))

    def _submit(self, api, opcode: int, fd: int, buf: int, nbytes: int, offset: int):
        request = yield from self.arena.alloc_words(api, _REQUEST_WORDS)
        yield from self._fill(api, request, opcode, fd, buf, nbytes, offset)
        yield from self.queue.push(api, request)
        return request

    def submit_read_into(self, api, request: int, fd: int, buf: int,
                         nbytes: int, offset: int):
        """Generator: stage a notify-mode read into a preallocated
        block *without* queueing it — batch with :meth:`kick`."""
        yield from self._fill(
            api, request, AIO_READ | AIO_NOTIFY, fd, buf, nbytes, offset)

    def kick(self, api, requests):
        """Generator: queue a batch of staged requests in one go."""
        yield from self.queue.push_many(api, requests)

    def submit_read(self, api, fd: int, buf: int, nbytes: int, offset: int):
        """Generator: queue a read into guest buffer ``buf``; returns a handle."""
        handle = yield from self._submit(api, AIO_READ, fd, buf, nbytes, offset)
        return handle

    def submit_write(self, api, fd: int, buf: int, nbytes: int, offset: int):
        handle = yield from self._submit(api, AIO_WRITE, fd, buf, nbytes, offset)
        return handle

    def submit_read_blocking(self, api, fd: int, buf: int, nbytes: int, offset: int):
        """Generator: like :meth:`submit_read`, but marks the request so
        the worker ``uwake``\\ s the status word — pair with
        :meth:`wait_block`."""
        handle = yield from self._submit(
            api, AIO_READ | AIO_NOTIFY, fd, buf, nbytes, offset)
        return handle

    def submit_write_blocking(self, api, fd: int, buf: int, nbytes: int, offset: int):
        handle = yield from self._submit(
            api, AIO_WRITE | AIO_NOTIFY, fd, buf, nbytes, offset)
        return handle

    def wait(self, api, handle: int):
        """Generator: spin (politely) until the request completes.

        Returns the I/O result count.  Frees the request block.
        """
        polls = 0
        while True:
            status = yield from api.load_word(handle + _STATUS)
            if status:
                break
            polls += 1
            if polls >= 16:
                yield from api.yield_cpu()
                polls = 0
        result = yield from api.load_word(handle + _RESULT)
        yield from self.arena.free(api, handle)
        return result

    def wait_block(self, api, handle: int, free: bool = True):
        """Generator: sleep until a ``*_blocking`` submission completes.

        The submitter parks in ``uwait`` on the request's status word;
        the worker stores the completion flag and then wakes the word
        (store-before-wake plus the kernel-side re-check makes the
        sleep race-free).  Returns the I/O result; frees the request
        unless ``free=False`` (preallocated, reusable blocks).
        """
        while True:
            status = yield from api.load_word(handle + _STATUS)
            if status:
                break
            yield from api.uwait(handle + _STATUS, 0)
        result = yield from api.load_word(handle + _RESULT)
        if free:
            yield from self.arena.free(api, handle)
        return result

    def poll(self, api, handle: int):
        """Generator: non-blocking completion check."""
        status = yield from api.load_word(handle + _STATUS)
        return bool(status)

    # ------------------------------------------------------------------
    # teardown

    def shutdown(self, api):
        """Generator: stop the workers and reap them."""
        yield from self.queue.close(api)
        for _ in self.worker_pids:
            yield from api.wait()
        self.worker_pids = []


def aio_worker(api, ctl_base):
    """The worker program: pull requests, do the I/O, flag completion."""
    ring = yield from AioRing.attach(api, ctl_base)
    while True:
        request = yield from ring.queue.pop(api)
        if request is None:
            return 0
        opcode = yield from api.load_word(request + _OPCODE)
        fd = yield from api.load_word(request + _FD)
        buf = yield from api.load_word(request + _BUF)
        nbytes = yield from api.load_word(request + _NBYTES)
        offset = yield from api.load_word(request + _OFFSET)
        if opcode & AIO_NOTIFY:
            # Blocking-mode requests use positional I/O: no shared file
            # offset, so concurrent workers need no serialization and
            # disk latencies genuinely overlap.
            if opcode & AIO_WRITE:
                result = yield from api.pwrite_v(fd, buf, nbytes, offset)
            else:
                result = yield from api.pread_v(fd, buf, nbytes, offset)
        else:
            # Workers share the descriptor (and its offset) with the
            # whole group, so positioning must be serialized.
            yield from ring.fd_lock.acquire(api)
            try:
                yield from api.lseek(fd, offset, SEEK_SET)
                if opcode & AIO_WRITE:
                    result = yield from api.write_v(fd, buf, nbytes)
                else:
                    result = yield from api.read_v(fd, buf, nbytes)
            finally:
                yield from ring.fd_lock.release(api)
        yield from api.store_word(request + _RESULT, result & 0xFFFFFFFF)
        yield from api.store_word(request + _STATUS, 1)
        if opcode & AIO_NOTIFY:
            yield from api.uwake(request + _STATUS, 1)
