"""User-level synchronization on shared memory.

The paper (section 3): "The best performance is obtained using some form
of busy-waiting for synchronization ... With hardware support for
busy-waiting, synchronization speeds can approach memory access speeds."
These primitives are exactly that — test-and-test-and-set spinlocks,
barriers and counters built on the simulated CAS/fetch-add instructions,
operating on words in a share group's common address space.  No kernel
entry happens on any fast path.
"""

from __future__ import annotations


class USpinLock:
    """A test-and-test-and-set spinlock on one shared word.

    ``spins_before_yield`` bounds the busy wait: after that many polls
    the waiter voluntarily yields the CPU, which keeps oversubscribed
    workloads (more spinners than processors) from convoying — the
    pathology experiment E12's gang scheduling addresses.
    """

    def __init__(self, vaddr: int, spins_before_yield: int = 64, name=None):
        self.vaddr = vaddr
        self.spins_before_yield = spins_before_yield
        self.name = name if name is not None else "uspin@%#x" % vaddr

    def _lockdep(self, api):
        return api.kernel.machine.lockdep

    def acquire(self, api):
        """Generator: spin until the lock is ours."""
        self._lockdep(api).attempt(self, api.proc, "uspin")
        while True:
            observed = yield from api.cas(self.vaddr, 0, 1)
            if observed == 0:
                self._lockdep(api).acquired(self, api.proc, "uspin")
                return
            polls = 0
            while True:
                value = yield from api.load_word(self.vaddr)
                if value == 0:
                    break
                polls += 1
                if polls >= self.spins_before_yield:
                    yield from api.yield_cpu()
                    polls = 0

    def try_acquire(self, api):
        """Generator: one attempt; returns True on success."""
        observed = yield from api.cas(self.vaddr, 0, 1)
        if observed == 0:
            lockdep = self._lockdep(api)
            lockdep.attempt(self, api.proc, "uspin")
            lockdep.acquired(self, api.proc, "uspin")
            return True
        return False

    def release(self, api):
        """Generator: free the lock (a single store)."""
        self._lockdep(api).released(self, api.proc)
        yield from api.store_word(self.vaddr, 0)


class UBarrier:
    """A sense-reversing barrier over two shared words.

    Word 0: arrival count.  Word 1: generation.  All participants must
    agree on ``nprocs``.
    """

    def __init__(self, vaddr: int, nprocs: int):
        self.count_addr = vaddr
        self.gen_addr = vaddr + 4
        self.nprocs = nprocs

    def wait(self, api):
        """Generator: block (spinning) until all participants arrive."""
        generation = yield from api.load_word(self.gen_addr)
        arrived = yield from api.fetch_add(self.count_addr, 1)
        if arrived + 1 == self.nprocs:
            yield from api.store_word(self.count_addr, 0)
            yield from api.fetch_add(self.gen_addr, 1)
            return
        polls = 0
        while True:
            now = yield from api.load_word(self.gen_addr)
            if now != generation:
                return
            polls += 1
            if polls >= 64:
                yield from api.yield_cpu()
                polls = 0


class UCounter:
    """An atomic counter on one shared word."""

    def __init__(self, vaddr: int):
        self.vaddr = vaddr

    def add(self, api, delta: int = 1):
        """Generator: atomically add; returns the previous value."""
        old = yield from api.fetch_add(self.vaddr, delta)
        return old

    def value(self, api):
        value = yield from api.load_word(self.vaddr)
        return value

    def set(self, api, value: int):
        yield from api.store_word(self.vaddr, value)
