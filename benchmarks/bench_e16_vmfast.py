"""Benchmark E16: the VM translation fast path vs the linear ablation."""

from repro.bench.experiments import run_e16

from conftest import drive


def test_e16_vmfast(benchmark):
    """indexed pregion lookup + targeted shootdowns vs linear scans"""
    drive(benchmark, run_e16)
