"""Benchmark E13 (bonus): shared-ASID context-switch economy inside a
share group."""

from repro.bench.experiments import run_e13

from conftest import drive


def test_e13_asid(benchmark):
    """Switching between share-group members is cheaper than between
    unrelated processes: one shared address space means one ASID."""
    drive(benchmark, run_e13)
