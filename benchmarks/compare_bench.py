"""Compare two BENCH_*.json files and gate on a metric regression.

CI runs this after the smoke benchmarks: the previous ``main`` run's
artifact is the baseline, the fresh result is the candidate, and a
watched metric that worsens by more than ``--threshold`` fails the job.
Stdlib only, exit codes: 0 OK (or no baseline to compare), 1 regression,
2 usage error.

Two gates run today — the scheduler hot path (E15) and the VM
translation hot path (E16):

    python benchmarks/compare_bench.py \
        --previous prev-bench/BENCH_E15.json \
        --current bench-artifacts/BENCH_E15.json \
        --key scheduler --gate percpu \
        --metric scan_per_pick --threshold 0.25

    python benchmarks/compare_bench.py \
        --previous prev-bench/BENCH_E16.json \
        --current bench-artifacts/BENCH_E16.json \
        --key vm_index --gate indexed \
        --metric scan_per_fault --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _load_rows(path, key):
    with open(path) as handle:
        data = json.load(handle)
    rows = {}
    for row in data.get("rows", []):
        if key in row:
            rows[str(row[key])] = row
    return data, rows


def _numeric_columns(columns, rows, key):
    numeric = []
    for column in columns:
        if column == key:
            continue
        values = [row.get(column) for row in rows.values()]
        if values and all(isinstance(value, (int, float)) for value in values):
            numeric.append(column)
    return numeric


def _render_table(key, columns, prev_rows, cur_rows):
    lines = []
    header = "%-12s %-16s %14s %14s %9s" % (key, "metric", "before", "after", "delta")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(set(prev_rows) | set(cur_rows)):
        prev, cur = prev_rows.get(name), cur_rows.get(name)
        for column in columns:
            before = prev.get(column) if prev else None
            after = cur.get(column) if cur else None
            if before is None and after is None:
                continue
            if isinstance(before, (int, float)) and before:
                delta = "%+.1f%%" % (100.0 * ((after or 0) - before) / before)
            else:
                delta = "n/a"
            lines.append(
                "%-12s %-16s %14s %14s %9s"
                % (name, column,
                   "-" if before is None else before,
                   "-" if after is None else after, delta)
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--previous", required=True, help="baseline JSON path")
    parser.add_argument("--current", required=True, help="candidate JSON path")
    parser.add_argument("--key", default="scheduler", help="row-identity column")
    parser.add_argument("--gate", default="percpu", help="row to gate on")
    parser.add_argument("--metric", default="scan_per_pick",
                        help="metric that must not regress (lower is better)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative increase (0.25 = +25%%)")
    args = parser.parse_args(argv)

    if not os.path.exists(args.current):
        print("candidate result %s missing" % args.current, file=sys.stderr)
        return 2
    if not os.path.exists(args.previous):
        print("no baseline at %s - nothing to compare, passing" % args.previous)
        return 0

    _prev_data, prev_rows = _load_rows(args.previous, args.key)
    cur_data, cur_rows = _load_rows(args.current, args.key)
    columns = _numeric_columns(cur_data.get("columns", []), cur_rows, args.key)
    print(_render_table(args.key, columns, prev_rows, cur_rows))

    prev_row = prev_rows.get(args.gate)
    cur_row = cur_rows.get(args.gate)
    if prev_row is None or cur_row is None:
        print("gate row %r absent from one side - passing" % args.gate)
        return 0
    before = prev_row.get(args.metric)
    after = cur_row.get(args.metric)
    if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
        print("metric %r not numeric on both sides - passing" % args.metric)
        return 0
    if before <= 0:
        print("baseline %s=%r not positive - passing" % (args.metric, before))
        return 0
    limit = before * (1.0 + args.threshold)
    verdict = "REGRESSION" if after > limit else "ok"
    print(
        "gate: %s.%s %.4g -> %.4g (limit %.4g, +%.0f%%): %s"
        % (args.gate, args.metric, before, after, limit,
           args.threshold * 100, verdict)
    )
    return 1 if after > limit else 0


if __name__ == "__main__":
    sys.exit(main())
