"""Compare two BENCH_*.json files and gate on a metric regression.

CI runs this after the smoke benchmarks: the previous ``main`` run's
artifact is the baseline, the fresh result is the candidate.  Stdlib
only, exit codes: 0 OK (or no baseline to compare), 1 regression, 2
usage error.

Two gating modes:

* **CI overlap** (preferred): when both files carry multi-seed
  bootstrap intervals under ``"stats"`` (written by ``python -m
  repro.bench --seeds N``), the gate fails only when the candidate's
  confidence interval is *entirely* on the wrong side of the
  baseline's — a statistically-resolved regression, immune to
  single-seed luck.
* **Threshold** (fallback): without stats on both sides, the watched
  metric failing by more than ``--threshold`` relative (0.25 = +25%)
  fails the job, as before.

Every metric present in both files is reported in the delta table;
only ``--metric`` on the ``--gate`` row decides pass/fail.

    python benchmarks/compare_bench.py \
        --previous prev-bench/BENCH_E15.json \
        --current bench-artifacts/BENCH_E15.json \
        --key scheduler --gate percpu \
        --metric scan_per_pick --threshold 0.25

    python benchmarks/compare_bench.py \
        --previous prev-bench/BENCH_E16.json \
        --current bench-artifacts/BENCH_E16.json \
        --key vm_index --gate indexed \
        --metric scan_per_fault --threshold 0.25

``--host`` compares two BENCH_HOST.json files on
``sim_cycles_per_host_sec`` instead (direction: higher is better) and,
when either side carries inline-continuation counters
(``inline_hops``/``inline_fallbacks``), reports the hit-rate telemetry
next to the headline rate.  The default threshold (0.35) tolerates
shared-runner noise but not a real regression of the direct-run
dispatch work:

    python benchmarks/compare_bench.py --host \
        --previous prev-bench/BENCH_HOST.json \
        --current bench-artifacts/BENCH_HOST.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _load_rows(path, key):
    with open(path) as handle:
        data = json.load(handle)
    rows = {}
    for row in data.get("rows", []):
        if key in row:
            rows[str(row[key])] = row
    return data, rows


def _numeric_columns(columns, rows, key):
    numeric = []
    for column in columns:
        if column == key:
            continue
        values = [row.get(column) for row in rows.values()]
        if values and all(isinstance(value, (int, float)) for value in values):
            numeric.append(column)
    return numeric


def _render_table(key, columns, prev_rows, cur_rows):
    lines = []
    header = "%-12s %-16s %14s %14s %9s" % (key, "metric", "before", "after", "delta")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(set(prev_rows) | set(cur_rows)):
        prev, cur = prev_rows.get(name), cur_rows.get(name)
        for column in columns:
            before = prev.get(column) if prev else None
            after = cur.get(column) if cur else None
            if before is None and after is None:
                continue
            if isinstance(before, (int, float)) and before:
                delta = "%+.1f%%" % (100.0 * ((after or 0) - before) / before)
            else:
                delta = "n/a"
            lines.append(
                "%-12s %-16s %14s %14s %9s"
                % (name, column,
                   "-" if before is None else before,
                   "-" if after is None else after, delta)
            )
    return "\n".join(lines)


def _stat(data, gate, metric):
    """The bootstrap summary for (gate row, metric), if the file has one."""
    stat = data.get("stats", {}).get(gate, {}).get(metric)
    if (
        isinstance(stat, dict)
        and isinstance(stat.get("ci_lo"), (int, float))
        and isinstance(stat.get("ci_hi"), (int, float))
        and isinstance(stat.get("mean"), (int, float))
    ):
        return stat
    return None


def _gate_ci_overlap(gate, metric, before, after, direction) -> int:
    """Fail only when the candidate CI clears the baseline CI entirely."""
    fmt = "[%.4g, %.4g] (mean %.4g, n=%d)"
    print(
        "gate (CI overlap, %s is better): %s.%s\n  baseline  %s\n  candidate %s"
        % (direction, gate, metric,
           fmt % (before["ci_lo"], before["ci_hi"], before["mean"],
                  before.get("n", 0)),
           fmt % (after["ci_lo"], after["ci_hi"], after["mean"],
                  after.get("n", 0)))
    )
    if direction == "lower":
        worse = after["ci_lo"] > before["ci_hi"]
    else:
        worse = after["ci_hi"] < before["ci_lo"]
    print("  verdict: %s" % ("REGRESSION" if worse else "ok"))
    return 1 if worse else 0


def _gate_threshold(gate, metric, before, after, threshold, direction) -> int:
    if before <= 0:
        print("baseline %s=%r not positive - passing" % (metric, before))
        return 0
    if direction == "lower":
        limit = before * (1.0 + threshold)
        worse = after > limit
    else:
        limit = before * (1.0 - threshold)
        worse = after < limit
    print(
        "gate (threshold, %s is better): %s.%s %.4g -> %.4g "
        "(limit %.4g, %.0f%%): %s"
        % (direction, gate, metric, before, after, limit,
           threshold * 100, "REGRESSION" if worse else "ok")
    )
    return 1 if worse else 0


def _inline_line(label, summary):
    """One side's inline-continuation telemetry, or None if absent."""
    counters = summary.get("counters", {})
    hops = counters.get("inline_hops", 0)
    fallbacks = counters.get("inline_fallbacks", 0)
    if not hops and not fallbacks:
        return None
    events = summary.get("events", 0)
    rate = 100.0 * hops / events if events else 0.0
    return "  %-9s %s hops, %s fallbacks, %.1f%% of %s events inline" % (
        label, "{:,}".format(hops), "{:,}".format(fallbacks), rate,
        "{:,}".format(events),
    )


def _compare_host(args) -> int:
    with open(args.previous) as handle:
        prev = json.load(handle)
    with open(args.current) as handle:
        cur = json.load(handle)
    before = prev.get("sim_cycles_per_host_sec")
    after = cur.get("sim_cycles_per_host_sec")
    if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
        print("sim_cycles_per_host_sec missing on one side - passing")
        return 0
    print(
        "host speed: %.0f -> %.0f sim cycles/host-sec "
        "(%.3f -> %.3f host-s inside Engine.run)"
        % (before, after,
           prev.get("wall_seconds", 0.0), cur.get("wall_seconds", 0.0))
    )
    inline = [
        line
        for line in (_inline_line("baseline", prev), _inline_line("candidate", cur))
        if line is not None
    ]
    if inline:
        print("inline dispatch:")
        for line in inline:
            print(line)
    return _gate_threshold("host", "sim_cycles_per_host_sec",
                           before, after, args.threshold, "higher")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--previous", required=True, help="baseline JSON path")
    parser.add_argument("--current", required=True, help="candidate JSON path")
    parser.add_argument("--key", default="scheduler", help="row-identity column")
    parser.add_argument("--gate", default="percpu", help="row to gate on")
    parser.add_argument("--metric", default="scan_per_pick",
                        help="metric that must not regress")
    parser.add_argument("--direction", choices=("lower", "higher"),
                        default="lower",
                        help="which way is better for --metric")
    parser.add_argument("--threshold", type=float, default=None,
                        help="allowed relative change when no CIs "
                             "(default 0.25; 0.35 with --host)")
    parser.add_argument("--host", action="store_true",
                        help="compare two BENCH_HOST.json files on "
                             "sim_cycles_per_host_sec (higher is better)")
    args = parser.parse_args(argv)
    # --host re-baselined after the direct-run dispatch work: the rate
    # is high enough now that 0.35 clears runner noise while catching a
    # real fast-path regression (0.5 let half the win evaporate silently)
    if args.threshold is None:
        args.threshold = 0.35 if args.host else 0.25

    if not os.path.exists(args.current):
        print("candidate result %s missing" % args.current, file=sys.stderr)
        return 2
    if not os.path.exists(args.previous):
        print("no baseline at %s - nothing to compare, passing" % args.previous)
        return 0

    if args.host:
        return _compare_host(args)

    prev_data, prev_rows = _load_rows(args.previous, args.key)
    cur_data, cur_rows = _load_rows(args.current, args.key)
    columns = _numeric_columns(cur_data.get("columns", []), cur_rows, args.key)
    print(_render_table(args.key, columns, prev_rows, cur_rows))

    prev_row = prev_rows.get(args.gate)
    cur_row = cur_rows.get(args.gate)
    if prev_row is None or cur_row is None:
        print("gate row %r absent from one side - passing" % args.gate)
        return 0

    before_stat = _stat(prev_data, args.gate, args.metric)
    after_stat = _stat(cur_data, args.gate, args.metric)
    if before_stat is not None and after_stat is not None:
        return _gate_ci_overlap(args.gate, args.metric,
                                before_stat, after_stat, args.direction)

    before = prev_row.get(args.metric)
    after = cur_row.get(args.metric)
    if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
        print("metric %r not numeric on both sides - passing" % args.metric)
        return 0
    return _gate_threshold(args.gate, args.metric, before, after,
                           args.threshold, args.direction)


if __name__ == "__main__":
    sys.exit(main())
