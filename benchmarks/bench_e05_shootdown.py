"""Benchmark E5: VM ops in a share group: only shrink/detach pays the all-CPU TLB shootdown (sections 6.2, 7)."""

from repro.bench.experiments import run_e05

from conftest import drive


def test_e05_shootdown(benchmark):
    """VM ops in a share group: only shrink/detach pays the all-CPU TLB shootdown (sections 6.2, 7)"""
    drive(benchmark, run_e05)
