#!/usr/bin/env python
"""Render BENCH_TREND.json into SVG charts plus a markdown digest.

The trend file (written by ``python -m repro.bench --trend PATH``, one
entry per experiment per run) accumulates across PRs; this script turns
it into reviewable artifacts:

* ``trend_<EID>.svg`` — the experiment's headline metric over time, one
  polyline per table row, with the bootstrap CI as a shaded band;
* ``trend_host.svg`` — simulated cycles per host second across runs
  (the self-profiler's summary number, when present);
* ``TREND.md`` — the latest run's metric table per experiment with
  deltas against the previous entry.

Stdlib only — no matplotlib in CI.

Usage:  python benchmarks/plot_trend.py BENCH_TREND.json --out-dir DIR
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: first metric from this list present in an entry becomes the chart
HEADLINE = (
    "throughput_per_kcycle", "speedup", "ratio", "p99_cycles", "mean_cycles",
)

WIDTH, HEIGHT, PAD = 640, 360, 48
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#17becf", "#7f7f7f")


def load_entries(path: str) -> List[dict]:
    with open(path) as handle:
        return json.load(handle).get("entries", [])


def by_experiment(entries: List[dict]) -> Dict[str, List[dict]]:
    grouped: Dict[str, List[dict]] = {}
    for entry in entries:
        grouped.setdefault(entry.get("experiment", "?"), []).append(entry)
    return grouped


def headline_metric(runs: List[dict]) -> Optional[str]:
    present = set()
    for run in runs:
        for metrics in run.get("metrics", {}).values():
            present.update(metrics)
    for name in HEADLINE:
        if name in present:
            return name
    return min(present) if present else None


def series_points(runs: List[dict], row: str,
                  metric: str) -> List[Tuple[int, float, float, float]]:
    """(run index, mean, ci_lo, ci_hi) wherever the row reported it."""
    points = []
    for index, run in enumerate(runs):
        stat = run.get("metrics", {}).get(row, {}).get(metric)
        if stat is not None:
            points.append((index, float(stat["mean"]),
                           float(stat["ci_lo"]), float(stat["ci_hi"])))
    return points


def _scale(values: List[float], lo: float, hi: float,
           out_lo: float, out_hi: float) -> List[float]:
    span = (hi - lo) or 1.0
    return [out_lo + (v - lo) / span * (out_hi - out_lo) for v in values]


def render_chart(title: str, ylabel: str,
                 series: Dict[str, List[Tuple[int, float, float, float]]]) -> str:
    """A minimal line chart: one polyline + CI band per named series."""
    xs = [p[0] for pts in series.values() for p in pts]
    ys = [v for pts in series.values() for p in pts for v in p[1:]]
    if not xs:
        xs, ys = [0], [0.0]
    x_lo, x_hi = min(xs), max(xs) or 1
    y_lo, y_hi = min(ys + [0.0]), max(ys) or 1.0
    parts = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" '
        'font-family="monospace" font-size="12">' % (WIDTH, HEIGHT),
        '<rect width="100%" height="100%" fill="white"/>',
        '<text x="%d" y="20" font-size="14">%s</text>' % (PAD, title),
        '<text x="8" y="%d" transform="rotate(-90 8 %d)">%s</text>'
        % (HEIGHT // 2, HEIGHT // 2, ylabel),
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>'
        % (PAD, HEIGHT - PAD, WIDTH - PAD // 2, HEIGHT - PAD),
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>'
        % (PAD, PAD // 2, PAD, HEIGHT - PAD),
        '<text x="%d" y="%d">run index</text>'
        % (WIDTH // 2 - 30, HEIGHT - PAD // 4),
        '<text x="%d" y="%d" text-anchor="end">%.3g</text>'
        % (PAD - 4, PAD // 2 + 4, y_hi),
        '<text x="%d" y="%d" text-anchor="end">%.3g</text>'
        % (PAD - 4, HEIGHT - PAD, y_lo),
    ]
    for slot, (name, points) in enumerate(sorted(series.items())):
        if not points:
            continue
        color = PALETTE[slot % len(PALETTE)]
        px = _scale([p[0] for p in points], x_lo, x_hi, PAD, WIDTH - PAD // 2)
        mean = _scale([p[1] for p in points], y_lo, y_hi, HEIGHT - PAD, PAD // 2)
        lo = _scale([p[2] for p in points], y_lo, y_hi, HEIGHT - PAD, PAD // 2)
        hi = _scale([p[3] for p in points], y_lo, y_hi, HEIGHT - PAD, PAD // 2)
        band = (["%0.1f,%0.1f" % pair for pair in zip(px, hi)]
                + ["%0.1f,%0.1f" % pair for pair in zip(px[::-1], lo[::-1])])
        parts.append('<polygon points="%s" fill="%s" opacity="0.15"/>'
                     % (" ".join(band), color))
        parts.append(
            '<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>'
            % (" ".join("%0.1f,%0.1f" % pair for pair in zip(px, mean)),
               color))
        for x, y in zip(px, mean):
            parts.append('<circle cx="%0.1f" cy="%0.1f" r="3" fill="%s"/>'
                         % (x, y, color))
        parts.append('<text x="%d" y="%d" fill="%s">%s</text>'
                     % (WIDTH - PAD // 2 + 4, int(mean[-1]) + 4, color, name))
    parts.append("</svg>")
    return "\n".join(parts)


def render_markdown(grouped: Dict[str, List[dict]]) -> str:
    lines = ["# Benchmark trend", ""]
    for eid in sorted(grouped):
        runs = [r for r in grouped[eid] if r.get("metrics")]
        if not runs:
            continue
        latest, previous = runs[-1], (runs[-2] if len(runs) > 1 else None)
        lines.append("## %s (%d tracked runs, latest sha `%s`)"
                     % (eid, len(runs), (latest.get("sha") or "?")[:12]))
        lines.append("")
        lines.append("| row | metric | mean | 95% CI | vs previous |")
        lines.append("|---|---|---:|---|---:|")
        for row in latest["metrics"]:
            for metric, stat in sorted(latest["metrics"][row].items()):
                delta = ""
                if previous is not None:
                    old = previous.get("metrics", {}).get(row, {}).get(metric)
                    if old and old["mean"]:
                        delta = "%+.1f%%" % (
                            (stat["mean"] - old["mean"]) / old["mean"] * 100.0)
                lines.append("| %s | %s | %.4g | [%.4g, %.4g] | %s |" % (
                    row, metric, stat["mean"], stat["ci_lo"], stat["ci_hi"],
                    delta))
        lines.append("")
    hosts = [(eid, run) for eid, runs in sorted(grouped.items())
             for run in runs
             if (run.get("host") or {}).get("sim_cycles_per_host_sec")]
    if hosts:
        lines.append("## Host speed")
        lines.append("")
        lines.append("| experiment | sim cycles / host second |")
        lines.append("|---|---:|")
        for eid, run in hosts[-12:]:
            lines.append("| %s | %s |" % (
                eid, "{:,}".format(int(run["host"]["sim_cycles_per_host_sec"]))))
        lines.append("")
    return "\n".join(lines)


def render_all(trend_path: str, out_dir: str) -> List[str]:
    entries = load_entries(trend_path)
    grouped = by_experiment(entries)
    os.makedirs(out_dir, exist_ok=True)
    written = []

    for eid, runs in sorted(grouped.items()):
        metric = headline_metric(runs)
        if metric is None:
            continue
        rows = sorted({row for run in runs for row in run.get("metrics", {})})
        series = {row: series_points(runs, row, metric) for row in rows}
        path = os.path.join(out_dir, "trend_%s.svg" % eid)
        with open(path, "w") as handle:
            handle.write(render_chart("%s: %s" % (eid, metric), metric, series))
        written.append(path)

    host_series = {}
    for eid, runs in sorted(grouped.items()):
        points = [
            (index, float(run["host"]["sim_cycles_per_host_sec"]), 0.0, 0.0)
            for index, run in enumerate(runs)
            if (run.get("host") or {}).get("sim_cycles_per_host_sec")
        ]
        points = [(i, v, v, v) for i, v, _, _ in points]
        if points:
            host_series[eid] = points
    if host_series:
        path = os.path.join(out_dir, "trend_host.svg")
        with open(path, "w") as handle:
            handle.write(render_chart("host speed", "sim cycles / host sec",
                                      host_series))
        written.append(path)

    path = os.path.join(out_dir, "TREND.md")
    with open(path, "w") as handle:
        handle.write(render_markdown(grouped))
        handle.write("\n")
    written.append(path)
    return written


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trend", help="path to BENCH_TREND.json")
    parser.add_argument("--out-dir", default="benchmarks/results/trend",
                        help="directory for the SVG/markdown artifacts")
    args = parser.parse_args(argv[1:])
    if not os.path.exists(args.trend):
        print("no trend file at %s; nothing to plot" % args.trend)
        return 0
    for path in render_all(args.trend, args.out_dir):
        print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
