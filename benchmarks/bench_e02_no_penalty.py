"""Benchmark E2: share-group support adds nothing to normal processes (design goal 4, section 7)."""

from repro.bench.experiments import run_e02

from conftest import drive


def test_e02_no_penalty(benchmark):
    """share-group support adds nothing to normal processes (design goal 4, section 7)"""
    drive(benchmark, run_e02)
