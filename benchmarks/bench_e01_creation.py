"""Benchmark E1: fork vs sproc vs thread creation latency (paper section 7 and the Mach 10x quote in section 3)."""

from repro.bench.experiments import run_e01

from conftest import drive


def test_e01_creation(benchmark):
    """fork vs sproc vs thread creation latency (paper section 7 and the Mach 10x quote in section 3)"""
    drive(benchmark, run_e01)
