"""Benchmark E4: concurrent page faults under the shared read lock vs an exclusive-lock ablation (section 6.2)."""

from repro.bench.experiments import run_e04

from conftest import drive


def test_e04_sharedlock(benchmark):
    """concurrent page faults under the shared read lock vs an exclusive-lock ablation (section 6.2)"""
    drive(benchmark, run_e04)
