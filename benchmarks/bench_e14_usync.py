"""Benchmark E14 (bonus): spin vs spin-then-block locking when the group
is oversubscribed."""

from repro.bench.experiments import run_e14

from conftest import drive


def test_e14_usync(benchmark):
    """Kernel-assisted blocking (uwait/uwake) beats pure busy-waiting
    once spinners outnumber processors."""
    drive(benchmark, run_e14)
