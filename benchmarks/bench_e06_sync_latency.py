"""Benchmark E6: synchronization handoff latency: busy-wait vs kernel mechanisms (section 3)."""

from repro.bench.experiments import run_e06

from conftest import drive


def test_e06_sync_latency(benchmark):
    """synchronization handoff latency: busy-wait vs kernel mechanisms (section 3)"""
    drive(benchmark, run_e06)
