"""Benchmark E17: the flagship multi-tier server capacity sweep.

Runs the quick-scale arrival sweep (the per-PR CI variant); the full
preset — hundreds of processes, >=1M simulated requests at the top
arrival rate — runs from ``python -m repro.bench e17 --scale full`` in
the nightly job.
"""

from repro.bench.experiments import run_e17

from conftest import drive


def test_e17_server(benchmark):
    """open-loop arrival sweep over the three-tier share-group server"""
    drive(benchmark, run_e17, scale="quick")
