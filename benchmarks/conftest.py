"""Shared driver for the experiment benchmarks.

Each bench runs one experiment exactly once under pytest-benchmark
(the simulation is deterministic, so repeated rounds only measure the
host, not the system under test), checks the paper-shape claims, and
saves the rendered table under benchmarks/results/ plus a machine-
readable BENCH_<eid>.json with the headline rows and counter snapshots.
"""



def drive(benchmark, run_experiment, **kwargs):
    result = benchmark.pedantic(
        lambda: run_experiment(**kwargs), rounds=1, iterations=1
    )
    result.save()
    result.save_json()
    result.check()
    return result
