"""Benchmark E7: producer/consumer bandwidth by mechanism and transfer size (section 3)."""

from repro.bench.experiments import run_e07

from conftest import drive


def test_e07_bandwidth(benchmark):
    """producer/consumer bandwidth by mechanism and transfer size (section 3)"""
    drive(benchmark, run_e07)
