"""Benchmark E8: self-scheduling worker pools vs dynamic per-task creation (section 3)."""

from repro.bench.experiments import run_e08

from conftest import drive


def test_e08_selfsched(benchmark):
    """self-scheduling worker pools vs dynamic per-task creation (section 3)"""
    drive(benchmark, run_e08)
