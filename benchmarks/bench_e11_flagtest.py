"""Benchmark E11: batched p_flag test vs per-resource entry checks (section 6.3 design point)."""

from repro.bench.experiments import run_e11

from conftest import drive


def test_e11_flagtest(benchmark):
    """batched p_flag test vs per-resource entry checks (section 6.3 design point)"""
    drive(benchmark, run_e11)
