"""Benchmark E9: user-level asynchronous I/O via PR_SADDR|PR_SFDS (the section 4 example)."""

from repro.bench.experiments import run_e09

from conftest import drive


def test_e09_aio(benchmark):
    """user-level asynchronous I/O via PR_SADDR|PR_SFDS (the section 4 example)"""
    drive(benchmark, run_e09)
