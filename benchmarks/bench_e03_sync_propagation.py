"""Benchmark E3: non-VM resource update propagation cost vs group size (section 6.3)."""

from repro.bench.experiments import run_e03

from conftest import drive


def test_e03_sync_propagation(benchmark):
    """non-VM resource update propagation cost vs group size (section 6.3)"""
    drive(benchmark, run_e03)
