"""Benchmark E10: the five programming models head to head (executable Figures 1-4)."""

from repro.bench.experiments import run_e10

from conftest import drive


def test_e10_models(benchmark):
    """the five programming models head to head (executable Figures 1-4)"""
    drive(benchmark, run_e10)
