"""Benchmark E12: gang scheduling the share group (section 8 extension)."""

from repro.bench.experiments import run_e12

from conftest import drive


def test_e12_gang(benchmark):
    """gang scheduling the share group (section 8 extension)"""
    drive(benchmark, run_e12)
