"""Benchmark E15: per-CPU run queues vs the global run queue."""

from repro.bench.experiments import run_e15

from conftest import drive


def test_e15_sched(benchmark):
    """per-CPU run queues with affinity and stealing vs one global queue"""
    drive(benchmark, run_e15)
